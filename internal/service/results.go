package service

// The results query layer: GET /v1/results exposes the durable store as
// a filterable, paginated corpus, plus server-side aggregation — the
// scaling fit over every stored experiment, which is what turns years
// of accumulated runs into the cross-protocol time-versus-n picture the
// sweep layer computes for a single grid.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/store"
	"popproto/internal/sweep"
)

// ErrNoStore reports a results query against a server running without
// a durable store (-store was not set).
var ErrNoStore = errors.New("results need a durable store (-store)")

// resultsMaxLimit bounds one page; pagination cursors cover the rest.
const (
	resultsDefaultLimit = 50
	resultsMaxLimit     = 500
)

// ResultsQuery filters the stored corpus. Zero fields match everything.
type ResultsQuery struct {
	// Kind restricts to one record kind ("job", "experiment", "sweep";
	// "" = all kinds).
	Kind string
	// Protocol matches a job's or experiment's protocol exactly, and a
	// sweep whose protocol axis contains it.
	Protocol string
	// Engine matches the spec's engine field exactly.
	Engine string
	// NMin/NMax bound the population size (0 = unbounded); a sweep
	// matches when any point of its n axis is in range.
	NMin, NMax int
	// Limit caps the page (0 = 50, max 500).
	Limit int
	// Cursor resumes a previous page ("" = first page).
	Cursor string
}

// ResultView is one stored record as served by GET /v1/results: the
// envelope plus the raw canonical spec and result payload.
type ResultView struct {
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	ID      string          `json:"id"`
	SavedAt time.Time       `json:"savedAt"`
	Spec    json.RawMessage `json:"spec"`
	Data    json.RawMessage `json:"data"`
}

// ResultsPage is one page of matches plus the cursor for the next.
type ResultsPage struct {
	Results []ResultView `json:"results"`
	// NextCursor resumes after the last result; absent on the final
	// page. Cursors expire when the store compacts itself — a 410
	// response means "restart from the first page".
	NextCursor string `json:"nextCursor,omitempty"`
}

// ScalingView is the aggregate=scaling response: per-(protocol, m)
// a·lg n + b fits over every stored experiment matching the query,
// computed by the same fitter the sweep layer uses.
type ScalingView struct {
	Aggregate string `json:"aggregate"`
	// Experiments is how many stored experiment records the fit saw
	// (sweep cells persist as experiments, so they are included).
	Experiments int                `json:"experiments"`
	Fits        []sweep.ScalingFit `json:"fits,omitempty"`
}

// specProbe is the union of the spec fields the filters inspect, across
// all three kinds (jobs/experiments carry protocol/n, sweeps carry the
// axes). Unknown fields are ignored, so old records keep matching.
type specProbe struct {
	Protocol  string   `json:"protocol"`
	Protocols []string `json:"protocols"`
	N         int      `json:"n"`
	Ns        []int    `json:"ns"`
	Engine    string   `json:"engine"`
}

func (q ResultsQuery) matches(rec store.Record) bool {
	if q.Protocol == "" && q.Engine == "" && q.NMin == 0 && q.NMax == 0 {
		return true
	}
	var p specProbe
	if json.Unmarshal(rec.Spec, &p) != nil {
		return false
	}
	if q.Protocol != "" {
		if p.Protocol != q.Protocol && !contains(p.Protocols, q.Protocol) {
			return false
		}
	}
	if q.Engine != "" && p.Engine != q.Engine {
		return false
	}
	if q.NMin != 0 || q.NMax != 0 {
		inRange := func(n int) bool {
			return n > 0 && (q.NMin == 0 || n >= q.NMin) && (q.NMax == 0 || n <= q.NMax)
		}
		ok := inRange(p.N)
		for _, n := range p.Ns {
			ok = ok || inRange(n)
		}
		if !ok {
			return false
		}
	}
	return true
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func (q ResultsQuery) storeKind() (store.Kind, error) {
	switch q.Kind {
	case "":
		return "", nil
	case string(store.KindJob), string(store.KindExperiment), string(store.KindSweep):
		return store.Kind(q.Kind), nil
	default:
		return "", fmt.Errorf("unknown kind %q (valid: job, experiment, sweep)", q.Kind)
	}
}

// Results returns one page of stored records matching q, in stable
// log order.
func (m *Manager) Results(q ResultsQuery) (ResultsPage, error) {
	st := m.core.Store
	if st == nil {
		return ResultsPage{}, ErrNoStore
	}
	kind, err := q.storeKind()
	if err != nil {
		return ResultsPage{}, err
	}
	limit := q.Limit
	if limit <= 0 {
		limit = resultsDefaultLimit
	}
	if limit > resultsMaxLimit {
		limit = resultsMaxLimit
	}
	sc, err := st.Scan(kind, q.Cursor)
	if err != nil {
		return ResultsPage{}, err
	}
	page := ResultsPage{Results: []ResultView{}}
	for len(page.Results) < limit && sc.Next() {
		rec := sc.Record()
		if !q.matches(rec) {
			continue
		}
		page.Results = append(page.Results, ResultView{
			Kind: string(rec.Kind), Key: rec.Key, ID: rec.ID,
			SavedAt: rec.SavedAt, Spec: rec.Spec, Data: rec.Data,
		})
	}
	if sc.Err() != nil {
		return ResultsPage{}, sc.Err()
	}
	if len(page.Results) == limit {
		// The page filled: there may be more. (A cursor pointing at the
		// exact end costs one empty follow-up page; correct and simple.)
		page.NextCursor = sc.Cursor()
	}
	return page, nil
}

// ResultsScaling fits the scaling curves over every stored experiment
// matching q (sweep cells included — they persist as experiment
// records), reusing the sweep fitter: per (protocol, m), mean parallel
// time = a·lg n + b plus the log-log exponent.
func (m *Manager) ResultsScaling(q ResultsQuery) (ScalingView, error) {
	st := m.core.Store
	if st == nil {
		return ScalingView{}, ErrNoStore
	}
	if q.Kind != "" && q.Kind != string(store.KindExperiment) {
		return ScalingView{}, fmt.Errorf("aggregate=scaling works over experiments (got kind=%q)", q.Kind)
	}
	sc, err := st.Scan(store.KindExperiment, "")
	if err != nil {
		return ScalingView{}, err
	}
	var outcomes []sweep.Outcome
	for sc.Next() {
		rec := sc.Record()
		if !q.matches(rec) {
			continue
		}
		var spec ExperimentSpec
		var agg ensemble.Aggregates
		if json.Unmarshal(rec.Spec, &spec) != nil || json.Unmarshal(rec.Data, &agg) != nil {
			continue // foreign or future record shape: not fittable
		}
		if spec.Protocol == "" || spec.N <= 0 {
			continue
		}
		eng, err := pp.ParseEngine(spec.Engine)
		if err != nil {
			eng = pp.EngineAuto
		}
		outcomes = append(outcomes, sweep.Outcome{
			Cell:       sweep.Cell{Protocol: spec.Protocol, N: spec.N, M: spec.M, Engine: eng},
			Aggregates: agg,
		})
	}
	if sc.Err() != nil {
		return ScalingView{}, sc.Err()
	}
	// The sweep fitter consumes cells in grid order (per group, n
	// ascending); stored experiments arrive in append order, so sort.
	sort.SliceStable(outcomes, func(i, j int) bool {
		a, b := outcomes[i], outcomes[j]
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return a.N < b.N
	})
	return ScalingView{
		Aggregate:   "scaling",
		Experiments: len(outcomes),
		Fits:        sweep.Summarize(outcomes).Fits,
	}, nil
}

// handleResults is the GET /v1/results handler: parse the filter
// params, dispatch to the page or aggregate path, and map the error
// taxonomy (bad params 400, no store 404, expired cursor 410).
func handleResults(m *Manager, w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	q := ResultsQuery{
		Kind:     qs.Get("kind"),
		Protocol: qs.Get("protocol"),
		Engine:   qs.Get("engine"),
		Cursor:   qs.Get("cursor"),
	}
	for name, dst := range map[string]*int{
		"n_min": &q.NMin, "n_max": &q.NMax, "limit": &q.Limit,
	} {
		raw := qs.Get(name)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid %s %q", name, raw)
			return
		}
		*dst = v
	}

	var (
		out any
		err error
	)
	switch agg := qs.Get("aggregate"); agg {
	case "":
		out, err = m.Results(q)
	case "scaling":
		out, err = m.ResultsScaling(q)
	default:
		writeError(w, http.StatusBadRequest, "unknown aggregate %q (valid: scaling)", agg)
		return
	}
	switch {
	case errors.Is(err, ErrNoStore):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, store.ErrInvalidCursor):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, store.ErrScanInvalidated):
		// The store compacted itself under the cursor; the client
		// restarts from the first page.
		writeError(w, http.StatusGone, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}
