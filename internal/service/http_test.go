package service_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"popproto/internal/service"
)

type submitResp struct {
	Job    service.JobView `json:"job"`
	Cached bool            `json:"cached"`
}

func newTestHandler(t *testing.T, opts service.Options) http.Handler {
	t.Helper()
	m := service.NewManager(opts)
	t.Cleanup(m.Close)
	return service.NewHandler(m)
}

// do runs one request through the handler and decodes the JSON response.
func do(t *testing.T, h http.Handler, method, target, body string, want int, out any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != want {
		t.Fatalf("%s %s = %d, want %d (body: %s)", method, target, w.Code, want, w.Body)
	}
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: undecodable response %q: %v", method, target, w.Body, err)
		}
	}
}

// errBody asserts the {"error": ...} shape of every failure response.
type errBody struct {
	Error string `json:"error"`
}

func TestProtocolsEndpoint(t *testing.T) {
	h := newTestHandler(t, service.Options{})
	var got struct {
		Protocols []struct {
			Key     string `json:"key"`
			Summary string `json:"summary"`
			Target  int    `json:"target"`
			Params  []struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			} `json:"params"`
		} `json:"protocols"`
	}
	do(t, h, "GET", "/v1/protocols", "", http.StatusOK, &got)

	keys := make(map[string]bool)
	for _, p := range got.Protocols {
		keys[p.Key] = true
		if p.Summary == "" {
			t.Errorf("protocol %q has no summary", p.Key)
		}
		if p.Key == "pll" {
			if len(p.Params) == 0 || p.Params[0].Name != "m" || p.Params[0].Doc == "" {
				t.Errorf("pll params not documented: %+v", p.Params)
			}
		}
	}
	for _, want := range []string{"pll", "pll-sym", "angluin", "lottery", "maxid", "epidemic"} {
		if !keys[want] {
			t.Errorf("catalog is missing %q", want)
		}
	}
}

// TestElectionJobEndToEnd is the acceptance scenario: a PLL election at
// n=10⁵ on the count engine completes with exactly one leader, an
// identical request is answered from the cache, and the SSE trace
// replays at least two census snapshots plus a done event.
func TestElectionJobEndToEnd(t *testing.T) {
	h := newTestHandler(t, service.Options{Workers: 2})
	spec := `{"protocol": "pll", "n": 100000, "engine": "count", "seed": 42}`

	var first submitResp
	do(t, h, "POST", "/v1/jobs", spec, http.StatusAccepted, &first)
	if first.Cached {
		t.Error("first submission reported cached")
	}
	id := first.Job.ID
	if id == "" {
		t.Fatal("no job id in response")
	}

	// Poll until the job is done.
	deadline := time.Now().Add(60 * time.Second)
	var view service.JobView
	for {
		do(t, h, "GET", "/v1/jobs/"+id, "", http.StatusOK, &view)
		if view.State == service.StateDone {
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Result == nil {
		t.Fatal("done job has no result")
	}
	if !view.Result.Stabilized || view.Result.Leaders != 1 {
		t.Errorf("result = %+v, want stabilized with exactly one leader", view.Result)
	}
	if view.Result.ParallelTime <= 0 {
		t.Error("nonpositive parallel stabilization time")
	}

	// The identical spec must be served from the cache with 200.
	var second submitResp
	do(t, h, "POST", "/v1/jobs", spec, http.StatusOK, &second)
	if !second.Cached {
		t.Error("repeat of an identical request was not served from cache")
	}
	if second.Job.ID != id {
		t.Errorf("cached job id %q != original %q", second.Job.ID, id)
	}

	// The SSE trace replays the stored trajectory.
	r := httptest.NewRequest("GET", "/v1/jobs/"+id+"/trace", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("trace status = %d (body: %s)", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	census, done := 0, 0
	var lastData string
	for _, line := range strings.Split(w.Body.String(), "\n") {
		switch {
		case line == "event: census":
			census++
		case line == "event: done":
			done++
		case strings.HasPrefix(line, "data: "):
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if census < 2 {
		t.Errorf("trace streamed %d census snapshots, want >= 2", census)
	}
	if done != 1 {
		t.Errorf("trace streamed %d done events, want 1", done)
	}
	var final service.JobView
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatalf("last event payload %q: %v", lastData, err)
	}
	if final.State != service.StateDone {
		t.Errorf("done event carries state %q", final.State)
	}

	// The health endpoint reflects the cache hit.
	var health struct {
		Status string        `json:"status"`
		Stats  service.Stats `json:"stats"`
	}
	do(t, h, "GET", "/v1/health", "", http.StatusOK, &health)
	if health.Status != "ok" || health.Stats.Hits == 0 {
		t.Errorf("health = %+v, want ok with at least one cache hit", health)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	h := newTestHandler(t, service.Options{MaxN: 1000})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed json", `{"protocol": `, "invalid job spec"},
		{"unknown field", `{"protocol": "pll", "n": 100, "flux": 1}`, "unknown field"},
		{"unknown protocol", `{"protocol": "paxos", "n": 100}`, "unknown protocol"},
		{"n too small", `{"protocol": "pll", "n": 1}`, "population size"},
		{"n over limit", `{"protocol": "pll", "n": 5000}`, "exceeds this server's count-engine limit"},
		{"bad engine", `{"protocol": "pll", "n": 100, "engine": "gpu"}`, "unknown engine"},
		{"m on m-less protocol", `{"protocol": "angluin", "n": 100, "m": 8}`, "takes no m"},
		{"m too small", `{"protocol": "pll", "n": 900, "m": 2}`, "m ≥ log₂ n"},
		{"negative budget", `{"protocol": "pll", "n": 100, "maxParallelTime": -3}`, "negative maxParallelTime"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e errBody
			do(t, h, "POST", "/v1/jobs", c.body, http.StatusBadRequest, &e)
			if !strings.Contains(e.Error, c.wantErr) {
				t.Errorf("error %q does not contain %q", e.Error, c.wantErr)
			}
		})
	}
}

func TestUnknownJob(t *testing.T) {
	h := newTestHandler(t, service.Options{})
	for _, target := range []string{"/v1/jobs/jdeadbeef", "/v1/jobs/jdeadbeef/trace"} {
		var e errBody
		do(t, h, "GET", target, "", http.StatusNotFound, &e)
		if !strings.Contains(e.Error, "no such job") {
			t.Errorf("GET %s error = %q", target, e.Error)
		}
	}
	var e errBody
	do(t, h, "DELETE", "/v1/jobs/jdeadbeef", "", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "no such job") {
		t.Errorf("DELETE error = %q", e.Error)
	}
}

func TestOversizedBody(t *testing.T) {
	h := newTestHandler(t, service.Options{})
	body := `{"protocol": "pll", "n": 100, "engine": "` + strings.Repeat("x", 2<<20) + `"}`
	var e errBody
	do(t, h, "POST", "/v1/jobs", body, http.StatusBadRequest, &e)
	if e.Error == "" {
		t.Error("oversized body produced no JSON error")
	}
}

// TestTraceStreamsLiveJob subscribes to a running job over a real HTTP
// connection, receives live census events, cancels the job, and expects
// the stream to finish with a done event carrying the canceled state.
func TestTraceStreamsLiveJob(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(srv.Close)

	// A linear-time election: long enough to observe streaming mid-run.
	job, _, err := m.Submit(service.JobSpec{Protocol: "angluin", N: 300_000, Engine: "agent"})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	census, done := 0, 0
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: census":
			census++
			if census == 3 {
				// Seen live streaming; now cancel and expect closure.
				m.Cancel(job.ID)
			}
		case line == "event: done":
			done++
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if census < 3 {
		t.Errorf("streamed %d census events, want >= 3", census)
	}
	if done != 1 {
		t.Errorf("streamed %d done events, want 1", done)
	}
	<-job.Done()
	if got := job.State(); got != service.StateCanceled {
		t.Errorf("job state = %s, want canceled", got)
	}
}

func TestDeleteCancelsJob(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1})
	t.Cleanup(m.Close)
	h := service.NewHandler(m)

	job, _, err := m.Submit(service.JobSpec{Protocol: "angluin", N: 300_000, Engine: "agent"})
	if err != nil {
		t.Fatal(err)
	}
	var view service.JobView
	do(t, h, "DELETE", "/v1/jobs/"+job.ID, "", http.StatusAccepted, &view)
	if view.ID != job.ID {
		t.Errorf("DELETE returned job %q", view.ID)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not stop after DELETE")
	}
	if job.State() != service.StateCanceled {
		t.Errorf("state = %s, want canceled", job.State())
	}
}

// TestExperimentEndToEnd: submit an ensemble over HTTP, poll to
// completion, check the aggregates, hit the cache on resubmission, and
// read the SSE aggregate stream.
func TestExperimentEndToEnd(t *testing.T) {
	h := newTestHandler(t, service.Options{Workers: 4})
	spec := `{"protocol": "pll", "n": 20000, "engine": "count", "seed": 42, "replicates": 6}`

	var first struct {
		Experiment service.ExperimentView `json:"experiment"`
		Cached     bool                   `json:"cached"`
	}
	do(t, h, "POST", "/v1/experiments", spec, http.StatusAccepted, &first)
	if first.Cached {
		t.Error("first submission reported cached")
	}
	id := first.Experiment.ID
	if id == "" {
		t.Fatal("no experiment id in response")
	}

	deadline := time.Now().Add(120 * time.Second)
	var view service.ExperimentView
	for {
		do(t, h, "GET", "/v1/experiments/"+id, "", http.StatusOK, &view)
		if view.State == service.StateDone {
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("experiment did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Aggregates == nil {
		t.Fatal("done experiment has no aggregates")
	}
	agg := view.Aggregates
	if agg.Replicates != 6 || agg.Stabilized != 6 {
		t.Errorf("aggregates = %+v, want 6/6 stabilized", agg)
	}
	if agg.CIHi <= agg.CILo || agg.P99 < agg.P50 {
		t.Errorf("implausible aggregate statistics: %+v", agg)
	}
	if len(agg.Survival) == 0 {
		t.Error("no survival curve in the HTTP view")
	}

	// Identical spec served from cache with 200.
	var second struct {
		Experiment service.ExperimentView `json:"experiment"`
		Cached     bool                   `json:"cached"`
	}
	do(t, h, "POST", "/v1/experiments", spec, http.StatusOK, &second)
	if !second.Cached || second.Experiment.ID != id {
		t.Errorf("resubmission not cached onto the same experiment: %+v", second)
	}

	// The SSE stream of a finished experiment replays the final
	// aggregates and closes with a done event.
	r := httptest.NewRequest("GET", "/v1/experiments/"+id+"/stream", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status = %d (body: %s)", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	aggregates, done := 0, 0
	for _, line := range strings.Split(w.Body.String(), "\n") {
		switch line {
		case "event: aggregate":
			aggregates++
		case "event: done":
			done++
		}
	}
	if aggregates < 1 || done != 1 {
		t.Errorf("stream replayed %d aggregate and %d done events, want >=1 and 1", aggregates, done)
	}
}

func TestExperimentValidationErrors(t *testing.T) {
	h := newTestHandler(t, service.Options{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"replicates missing", `{"protocol": "pll", "n": 100}`, "replicates"},
		{"ci out of range", `{"protocol": "pll", "n": 100, "replicates": 4, "ci": 2}`, "ci target"},
		{"unknown protocol", `{"protocol": "paxos", "n": 100, "replicates": 4}`, "unknown protocol"},
		{"unknown field", `{"protocol": "pll", "n": 100, "replicates": 4, "flux": 1}`, "unknown field"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e errBody
			do(t, h, "POST", "/v1/experiments", c.body, http.StatusBadRequest, &e)
			if !strings.Contains(e.Error, c.wantErr) {
				t.Errorf("error %q does not contain %q", e.Error, c.wantErr)
			}
		})
	}

	var e errBody
	do(t, h, "GET", "/v1/experiments/edeadbeef", "", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "no such experiment") {
		t.Errorf("404 error = %q", e.Error)
	}
}

// TestExperimentStreamLive subscribes to a running experiment over a
// real HTTP connection and expects live aggregate events followed by a
// done event.
func TestExperimentStreamLive(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(srv.Close)

	exp, _, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 20_000, Seed: 9, Replicates: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/experiments/" + exp.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	aggregates, done := 0, 0
	for scanner.Scan() {
		switch scanner.Text() {
		case "event: aggregate":
			aggregates++
		case "event: done":
			done++
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if aggregates < 1 || done != 1 {
		t.Errorf("streamed %d aggregate and %d done events", aggregates, done)
	}
	<-exp.Done()
	if exp.State() != service.StateDone {
		t.Errorf("experiment state = %s", exp.State())
	}
}
