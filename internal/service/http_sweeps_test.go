package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"popproto/internal/service"
)

// TestSweepEndToEnd: submit a parameter sweep over HTTP, poll to
// completion, check the per-cell aggregates and the fitted scaling
// summary, hit the cache on resubmission, and read the SSE cell stream.
func TestSweepEndToEnd(t *testing.T) {
	h := newTestHandler(t, service.Options{Workers: 4})
	spec := `{"protocols": ["pll"], "ns": [500, 1000, 2000], "engine": "count", "replicates": 3}`

	var first struct {
		Sweep  service.SweepView `json:"sweep"`
		Cached bool              `json:"cached"`
	}
	do(t, h, "POST", "/v1/sweeps", spec, http.StatusAccepted, &first)
	if first.Cached {
		t.Error("first submission reported cached")
	}
	id := first.Sweep.ID
	if id == "" {
		t.Fatal("no sweep id in response")
	}
	if len(first.Sweep.Cells) != 3 {
		t.Fatalf("submitted sweep has %d cells, want 3", len(first.Sweep.Cells))
	}

	deadline := time.Now().Add(120 * time.Second)
	var view service.SweepView
	for {
		do(t, h, "GET", "/v1/sweeps/"+id, "", http.StatusOK, &view)
		if view.State == service.StateDone {
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("sweep did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, c := range view.Cells {
		if c.State != service.StateDone || c.Aggregates == nil {
			t.Errorf("cell n=%d: state %s, aggregates %v", c.N, c.State, c.Aggregates)
			continue
		}
		if c.Aggregates.Stabilized != 3 {
			t.Errorf("cell n=%d stabilized %d/3", c.N, c.Aggregates.Stabilized)
		}
		if c.ExperimentID == "" {
			t.Errorf("cell n=%d has no experiment id", c.N)
		}
	}
	if view.Summary == nil || len(view.Summary.Fits) != 1 {
		t.Fatalf("summary = %+v, want one fit", view.Summary)
	}
	fit := view.Summary.Fits[0]
	if fit.Protocol != "pll" || fit.Points != 3 || fit.R2 < 0 || fit.R2 > 1 {
		t.Errorf("implausible fit: %+v", fit)
	}

	// A cell is fetchable as a standalone experiment by its advertised id.
	var expView service.ExperimentView
	do(t, h, "GET", "/v1/experiments/"+view.Cells[0].ExperimentID, "", http.StatusOK, &expView)
	if expView.State != service.StateDone || expView.Aggregates == nil {
		t.Errorf("cell experiment view = %+v", expView)
	}

	// Identical spec served from cache with 200.
	var second struct {
		Sweep  service.SweepView `json:"sweep"`
		Cached bool              `json:"cached"`
	}
	do(t, h, "POST", "/v1/sweeps", spec, http.StatusOK, &second)
	if !second.Cached || second.Sweep.ID != id {
		t.Errorf("resubmission not cached onto the same sweep: %+v", second)
	}

	// The SSE stream of a finished sweep replays one cell event per cell
	// and closes with a done event carrying the summary.
	r := httptest.NewRequest("GET", "/v1/sweeps/"+id+"/stream", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status = %d (body: %s)", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	cells, done := 0, 0
	for _, line := range strings.Split(w.Body.String(), "\n") {
		switch line {
		case "event: cell":
			cells++
		case "event: done":
			done++
		}
	}
	if cells < 3 || done != 1 {
		t.Errorf("stream replayed %d cell and %d done events, want >=3 and 1", cells, done)
	}
}

func TestSweepValidationErrors(t *testing.T) {
	h := newTestHandler(t, service.Options{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"no protocols", `{"ns": [100], "replicates": 2}`, "at least one protocol"},
		{"no ns", `{"protocols": ["pll"], "replicates": 2}`, "population size"},
		{"replicates missing", `{"protocols": ["pll"], "ns": [100]}`, "replicates"},
		{"unknown protocol", `{"protocols": ["paxos"], "ns": [100], "replicates": 2}`, "unknown protocol"},
		{"bad engine", `{"protocols": ["pll"], "ns": [100], "replicates": 2, "engine": "gpu"}`, "unknown engine"},
		{"unknown field", `{"protocols": ["pll"], "ns": [100], "replicates": 2, "flux": 1}`, "unknown field"},
		{"ci out of range", `{"protocols": ["pll"], "ns": [100], "replicates": 2, "ci": 2}`, "ci target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e errBody
			do(t, h, "POST", "/v1/sweeps", c.body, http.StatusBadRequest, &e)
			if !strings.Contains(e.Error, c.wantErr) {
				t.Errorf("error %q does not contain %q", e.Error, c.wantErr)
			}
		})
	}

	var e errBody
	do(t, h, "GET", "/v1/sweeps/sdeadbeef", "", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "no such sweep") {
		t.Errorf("404 error = %q", e.Error)
	}
}

// TestDeleteCancelsSweep: DELETE cascades to the in-flight cells and the
// stream finishes with a done event carrying the canceled state.
func TestDeleteCancelsSweep(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	t.Cleanup(m.Close)
	h := service.NewHandler(m)

	sw, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"angluin"},
		Ns:         []int{100_000, 120_000},
		Engine:     "count",
		Replicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var view service.SweepView
	do(t, h, "DELETE", "/v1/sweeps/"+sw.ID, "", http.StatusAccepted, &view)
	if view.ID != sw.ID {
		t.Errorf("DELETE returned sweep %q", view.ID)
	}
	select {
	case <-sw.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after DELETE")
	}
	if sw.State() != service.StateCanceled {
		t.Errorf("state = %s, want canceled", sw.State())
	}
}

// TestProtocolsListAuto: the catalog advertises the pseudo-engine
// "auto" and the per-protocol recommendation, and a job submitted with
// engine "auto" canonicalizes to the concrete recommendation.
func TestProtocolsListAuto(t *testing.T) {
	h := newTestHandler(t, service.Options{Workers: 2})
	var got struct {
		Protocols []struct {
			Key               string   `json:"key"`
			Engines           []string `json:"engines"`
			RecommendedEngine string   `json:"recommendedEngine"`
		} `json:"protocols"`
	}
	do(t, h, "GET", "/v1/protocols", "", http.StatusOK, &got)
	for _, p := range got.Protocols {
		hasAuto := false
		for _, e := range p.Engines {
			if e == "auto" {
				hasAuto = true
			}
		}
		if !hasAuto {
			t.Errorf("protocol %q does not list engine auto: %v", p.Key, p.Engines)
		}
		if p.RecommendedEngine == "" || p.RecommendedEngine == "auto" {
			t.Errorf("protocol %q recommendedEngine = %q", p.Key, p.RecommendedEngine)
		}
	}

	// engine auto resolves at canonicalization: the job's canonical spec
	// names the concrete engine, and it dedups with the explicit spelling.
	var auto submitResp
	do(t, h, "POST", "/v1/jobs", `{"protocol": "pll", "n": 2000, "engine": "auto", "seed": 7}`,
		http.StatusAccepted, &auto)
	if auto.Job.Spec.Engine != "agent" {
		t.Errorf("auto at n=2000 canonicalized to %q, want agent", auto.Job.Spec.Engine)
	}
	// The explicit spelling lands on the same run (200 if already done,
	// 202 if it joined the in-flight job — either way, the same id).
	var explicit submitResp
	r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"protocol": "pll", "n": 2000, "engine": "agent", "seed": 7}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK && w.Code != http.StatusAccepted {
		t.Fatalf("explicit resubmission status = %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &explicit); err != nil {
		t.Fatal(err)
	}
	if explicit.Job.ID != auto.Job.ID {
		t.Errorf("auto and explicit specs did not dedupe: %q vs %q", auto.Job.ID, explicit.Job.ID)
	}
}
