package service_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"popproto/internal/registry"
	"popproto/internal/service"
	"popproto/internal/store"
)

// waitSweepDone fails the test if the sweep does not reach a terminal
// state in time.
func waitSweepDone(t *testing.T, s *service.Sweep) {
	t.Helper()
	select {
	case <-s.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep %s still %s after 120s", s.ID, s.State())
	}
}

func TestSweepLifecycle(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 4})
	defer m.Close()

	sw, cached, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{500, 1000, 2000},
		Engine:     "count",
		Replicates: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first submission reported cached")
	}
	waitSweepDone(t, sw)
	if sw.State() != service.StateDone {
		t.Fatalf("state = %s (%s)", sw.State(), sw.View().Error)
	}

	cells := sw.Cells()
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3", len(cells))
	}
	for _, c := range cells {
		if c.State != service.StateDone {
			t.Errorf("cell %d (n=%d) state = %s, want done", c.Index, c.N, c.State)
		}
		if c.Aggregates == nil || c.Aggregates.Replicates != 4 || c.Aggregates.Stabilized != 4 {
			t.Errorf("cell n=%d aggregates = %+v, want 4/4 stabilized", c.N, c.Aggregates)
		}
		if c.Source != "run" {
			t.Errorf("cell n=%d source = %q, want run (fresh manager, nothing cached)", c.N, c.Source)
		}
		if c.ExperimentID == "" || c.Seed == 0 {
			t.Errorf("cell n=%d missing experiment linkage: %+v", c.N, c)
		}
	}

	sum := sw.Summary()
	if sum == nil || len(sum.Fits) != 1 {
		t.Fatalf("summary = %+v, want one fit", sum)
	}
	fit := sum.Fits[0]
	if fit.Protocol != "pll" || fit.Points != 3 {
		t.Errorf("fit = %+v, want pll over 3 points", fit)
	}
	if fit.R2 < 0 || fit.R2 > 1 {
		t.Errorf("fit R² = %g outside [0, 1]", fit.R2)
	}

	// Lookup and identical resubmission land on the same sweep.
	if got, ok := m.GetSweep(sw.ID); !ok || got != sw {
		t.Error("GetSweep did not return the submitted sweep")
	}
	again, cached, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{2000, 1000, 500, 1000}, // canonicalization sorts and dedupes
		Engine:     "count",
		Replicates: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != sw {
		t.Error("identical (canonicalized) spec not served from cache")
	}

	if stats := m.Stats(); stats.Sweeps == 0 {
		t.Errorf("stats do not count the sweep: %+v", stats)
	}
}

// TestSweepCellSharesExperimentCache: a sweep cell's result is indexed
// as a finished experiment — so the standalone submission of the same
// spec is a cache hit with bit-identical aggregates — and conversely a
// finished experiment is reused by a later sweep without re-simulation.
func TestSweepCellSharesExperimentCache(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 4})
	defer m.Close()

	sw, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{800, 1600},
		Engine:     "count",
		Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, sw)
	if sw.State() != service.StateDone {
		t.Fatalf("sweep state = %s (%s)", sw.State(), sw.View().Error)
	}
	cell := sw.Cells()[0]

	// The cell must be fetchable as an experiment by its advertised id...
	exp, ok := m.GetExperiment(cell.ExperimentID)
	if !ok {
		t.Fatalf("cell experiment %s not indexed", cell.ExperimentID)
	}
	if !reflect.DeepEqual(exp.Aggregates(), cell.Aggregates) {
		t.Error("cell aggregates diverge from its indexed experiment")
	}
	// ...and the standalone submission is a cache hit, not a re-run.
	before := m.Stats()
	again, cached, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 800, Engine: "count", Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != exp {
		t.Error("standalone experiment of a sweep cell's spec was not a cache hit")
	}
	if after := m.Stats(); after.Hits != before.Hits+1 {
		t.Errorf("hits %d -> %d, want +1", before.Hits, after.Hits)
	}

	// Conversely: a second sweep whose grid overlaps reuses the finished
	// cells from the cache (source "cache") instead of re-running them.
	sw2, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{800, 1600, 3200},
		Engine:     "count",
		Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, sw2)
	cells2 := sw2.Cells()
	if cells2[0].Source != "cache" || cells2[1].Source != "cache" {
		t.Errorf("overlapping cells not served from cache: %q, %q", cells2[0].Source, cells2[1].Source)
	}
	if cells2[2].Source != "run" {
		t.Errorf("fresh cell source = %q, want run", cells2[2].Source)
	}
	if !reflect.DeepEqual(cells2[0].Aggregates, cell.Aggregates) {
		t.Error("cached cell aggregates diverge from the original run")
	}
}

// TestSweepCellBitIdentical is the acceptance identity: a sweep cell ≡
// the equivalent standalone experiment (bit-identical aggregates, even
// across managers) ≡ — via a 1-replicate cell — the single job with the
// same seedless spec (replicate 0 discipline).
func TestSweepCellBitIdentical(t *testing.T) {
	// Manager A runs the sweep; manager B (fresh, nothing shared) runs
	// the standalone experiment and the job.
	a := service.NewManager(service.Options{Workers: 4})
	defer a.Close()
	b := service.NewManager(service.Options{Workers: 4})
	defer b.Close()

	sw, _, err := a.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{1200},
		Engine:     "count",
		Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, sw)
	cell := sw.Cells()[0]
	if cell.State != service.StateDone || cell.Aggregates == nil {
		t.Fatalf("cell did not finish: %+v", cell)
	}

	exp, _, err := b.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 1200, Engine: "count", Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitExpDone(t, exp)
	if !reflect.DeepEqual(exp.Aggregates(), cell.Aggregates) {
		t.Errorf("sweep cell and standalone experiment diverged:\ncell %+v\nexp  %+v",
			cell.Aggregates, exp.Aggregates())
	}
	if got := exp.View().Spec.Seed; got != cell.Seed {
		t.Errorf("derived seeds diverged: cell %d, experiment %d", cell.Seed, got)
	}

	// The 1-replicate cell collapses to the seedless job (replicate 0).
	one, _, err := a.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{1200},
		Engine:     "count",
		Replicates: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, one)
	oneCell := one.Cells()[0]

	job, _, err := b.Submit(service.JobSpec{Protocol: "pll", N: 1200, Engine: "count"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	res := job.Result()
	if oneCell.Aggregates.MeanSteps != float64(res.Steps) {
		t.Errorf("1-replicate cell ran %g steps, job ran %d — not bit-identical",
			oneCell.Aggregates.MeanSteps, res.Steps)
	}
	if oneCell.Aggregates.MeanParallelTime != res.ParallelTime {
		t.Errorf("cell parallel time %g, job %g", oneCell.Aggregates.MeanParallelTime, res.ParallelTime)
	}
	if oneCell.Seed != job.View().Spec.Seed {
		t.Errorf("cell seed %d, job seed %d", oneCell.Seed, job.View().Spec.Seed)
	}
}

// TestSweepCancellationCascade: canceling a sweep cancels its in-flight
// cell's ensemble (which runs under the sweep's context) and marks the
// never-started cells canceled — the cross-kind cancellation acceptance
// path.
func TestSweepCancellationCascade(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	// Linear-time cells big enough to cancel mid-flight.
	sw, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"angluin"},
		Ns:         []int{100_000, 120_000},
		Engine:     "count",
		Replicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let it get into the first cell, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for sw.State() == service.StateQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !m.CancelSweep(sw.ID) {
		t.Fatal("CancelSweep did not find the sweep")
	}
	waitSweepDone(t, sw)
	if sw.State() != service.StateCanceled {
		t.Fatalf("state = %s, want canceled", sw.State())
	}
	for _, c := range sw.Cells() {
		if !c.State.Terminal() {
			t.Errorf("cell n=%d left in state %s after sweep cancellation", c.N, c.State)
		}
		if c.State == service.StateDone && c.Aggregates == nil {
			t.Errorf("done cell n=%d has no aggregates", c.N)
		}
	}

	// Cancellation is not the spec's deterministic outcome: resubmission
	// re-runs rather than serving the canceled sweep.
	again, cached, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"angluin"},
		Ns:         []int{100_000, 120_000},
		Engine:     "count",
		Replicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached || again == sw {
		t.Error("canceled sweep served from cache")
	}
	m.CancelSweep(again.ID)
	waitSweepDone(t, again)
}

func TestSweepValidation(t *testing.T) {
	m := service.NewManager(service.Options{MaxReplicates: 100, MaxSweepCells: 4, MaxNAgent: 5000})
	defer m.Close()

	cases := []service.SweepSpec{
		{Ns: []int{100}, Replicates: 2},                                                         // no protocols
		{Protocols: []string{"pll"}, Replicates: 2},                                             // no ns
		{Protocols: []string{"pll"}, Ns: []int{100}},                                            // replicates missing
		{Protocols: []string{"nope"}, Ns: []int{100}, Replicates: 2},                            // unknown protocol
		{Protocols: []string{"pll"}, Ns: []int{1}, Replicates: 2},                               // n too small
		{Protocols: []string{"pll"}, Ns: []int{100}, Replicates: 101},                           // over MaxReplicates
		{Protocols: []string{"pll"}, Ns: []int{100}, Replicates: 2, Engine: "quantum"},          // bad engine
		{Protocols: []string{"pll"}, Ns: []int{100}, Replicates: 2, CI: 1.5},                    // ci out of range
		{Protocols: []string{"angluin"}, Ns: []int{100}, Ms: []int{3}, Replicates: 2},           // m on m-less protocol
		{Protocols: []string{"pll"}, Ns: []int{100, 200, 300, 400, 500}, Replicates: 2},         // over MaxSweepCells
		{Protocols: []string{"pll"}, Ns: []int{9000}, Replicates: 2, Engine: "agent"},           // over MaxNAgent
		{Protocols: []string{"pll"}, Ns: []int{100}, Replicates: 2, MaxParallelTime: -1},        // negative budget
		{Protocols: []string{"pll", "angluin"}, Ns: []int{100}, Ms: []int{0, 9}, Replicates: 2}, // m axis on m-less protocol
	}
	for _, spec := range cases {
		if _, _, err := m.SubmitSweep(spec); !errors.Is(err, registry.ErrBadSpec) {
			t.Errorf("SubmitSweep(%+v) error = %v, want ErrBadSpec", spec, err)
		}
	}
}

// TestSweepStoreRoundTrip: restore parity for all three kinds over one
// store — the sweep itself, its per-cell experiment records, and a job —
// all served back by a fresh manager without re-simulation.
func TestSweepStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	sweepSpec := service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{600, 1200},
		Engine:     "count",
		Replicates: 2,
	}
	jobSpec := service.JobSpec{Protocol: "pll", N: 600, Engine: "count", Seed: 99}

	m1 := service.NewManager(service.Options{Workers: 4, Store: st})
	sw, _, err := m1.SubmitSweep(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := m1.Submit(jobSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, sw)
	waitDone(t, job)
	if sw.State() != service.StateDone {
		t.Fatalf("sweep state = %s (%s)", sw.State(), sw.View().Error)
	}
	wantCells := sw.Cells()
	wantSummary := sw.Summary()
	wantSteps := job.Result().Steps
	sweepID := sw.ID
	m1.Close()
	st.Close()

	// "Restart": fresh store replay, fresh manager.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// 1 sweep + 2 cell experiments + 1 job.
	if st2.Len() != 4 {
		t.Fatalf("store replayed %d records, want 4", st2.Len())
	}
	m2 := service.NewManager(service.Options{Workers: 1, Store: st2})
	defer m2.Close()

	// The sweep restores by id and by spec, cells and summary intact.
	restored, ok := m2.GetSweep(sweepID)
	if !ok {
		t.Fatal("sweep not restorable by id")
	}
	if restored.State() != service.StateDone || !restored.View().Restored {
		t.Fatalf("restored sweep state = %s restored = %v", restored.State(), restored.View().Restored)
	}
	if !reflect.DeepEqual(restored.Cells(), wantCells) {
		t.Error("restored cells diverge from the originals")
	}
	if !reflect.DeepEqual(restored.Summary(), wantSummary) {
		t.Errorf("restored summary %+v != original %+v", restored.Summary(), wantSummary)
	}
	resub, cached, err := m2.SubmitSweep(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || resub != restored {
		t.Error("sweep resubmission not served from the restored record")
	}

	// Each cell restores as a standalone experiment from its own record.
	cellExp, cached, err := m2.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 1200, Engine: "count", Replicates: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("cell's experiment record not served from the store")
	}
	if !reflect.DeepEqual(cellExp.Aggregates(), wantCells[1].Aggregates) {
		t.Error("restored cell experiment aggregates diverged")
	}

	// And the job restores as before.
	jobRestored, cached, err := m2.Submit(jobSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || jobRestored.Result().Steps != wantSteps {
		t.Errorf("restored job: cached=%v steps=%d want %d", cached, jobRestored.Result().Steps, wantSteps)
	}

	if stats := m2.Stats(); stats.Misses != 0 {
		t.Errorf("restarted manager re-simulated: %d misses", stats.Misses)
	}
}

// TestSweepEngineAutoPerCell: with engine auto (the sweep default), each
// cell resolves independently — the per-agent engine below the
// registry's census threshold, the hybrid engine above it — and the
// resolved engine lands in the cell's canonical identity.
func TestSweepEngineAutoPerCell(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 4})
	defer m.Close()

	sw, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols:  []string{"pll"},
		Ns:         []int{1000, 70_000}, // straddles the 2¹⁶ auto threshold
		Replicates: 2,                   // engine omitted = auto
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, sw)
	if sw.State() != service.StateDone {
		t.Fatalf("sweep state = %s (%s)", sw.State(), sw.View().Error)
	}
	cells := sw.Cells()
	if cells[0].Engine != "agent" {
		t.Errorf("n=1000 resolved to %q, want agent", cells[0].Engine)
	}
	if cells[1].Engine != "hybrid" {
		t.Errorf("n=70000 resolved to %q, want hybrid", cells[1].Engine)
	}
	if fits := sw.Summary().Fits; len(fits) != 1 || len(fits[0].Engines) != 2 {
		t.Errorf("summary fits = %+v, want one fit spanning two engines", fits)
	}

	// The auto cell dedupes against the explicit spelling: submitting the
	// concrete experiment is a cache hit on the cell's result.
	_, cached, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 1000, Engine: "agent", Replicates: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("explicit-engine experiment did not hit the auto cell's cache entry")
	}
}

// TestMixedLoadFairness floods the manager with jobs, experiments and
// sweeps at once through the shared scheduler and asserts everything
// completes, the accounting adds up, and no goroutines leak. Run under
// -race in CI.
func TestMixedLoadFairness(t *testing.T) {
	before := runtime.NumGoroutine()
	m := service.NewManager(service.Options{Workers: 3})

	const jobN = 24
	jobs := make([]*service.Job, jobN)
	var exps []*service.Experiment
	var sweeps []*service.Sweep
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < jobN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 400 + 10*(i%8), Seed: uint64(1 + i%8)})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			jobs[i] = j
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := m.SubmitExperiment(service.ExperimentSpec{
				Protocol: "pll", N: 500 + 100*i, Replicates: 4,
			})
			if err != nil {
				t.Errorf("SubmitExperiment: %v", err)
				return
			}
			mu.Lock()
			exps = append(exps, e)
			mu.Unlock()
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, _, err := m.SubmitSweep(service.SweepSpec{
				Protocols:  []string{"pll"},
				Ns:         []int{300 + 50*i, 600 + 50*i},
				Engine:     "count",
				Replicates: 2,
			})
			if err != nil {
				t.Errorf("SubmitSweep: %v", err)
				return
			}
			mu.Lock()
			sweeps = append(sweeps, s)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	for _, j := range jobs {
		if j == nil {
			t.Fatal("missing job")
		}
		waitDone(t, j)
		if j.State() != service.StateDone {
			t.Errorf("job %s state = %s", j.ID, j.State())
		}
	}
	for _, e := range exps {
		waitExpDone(t, e)
		if e.State() != service.StateDone {
			t.Errorf("experiment %s state = %s", e.ID, e.State())
		}
	}
	for _, s := range sweeps {
		waitSweepDone(t, s)
		if s.State() != service.StateDone {
			t.Errorf("sweep %s state = %s (%s)", s.ID, s.State(), s.View().Error)
		}
	}
	m.Close()

	// The shared pool must wind down completely: no leaked goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after Close",
				before, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}
