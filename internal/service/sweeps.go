package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/service/runcore"
	"popproto/internal/store"
	"popproto/internal/sweep"
)

// SweepSpec is the wire-format sweep description (the POST /v1/sweeps
// body): a parameter grid — a population axis × a protocol axis ×
// optionally a knowledge-parameter axis — whose cells each run as a
// full Monte-Carlo ensemble, finished with a scaling summary (fitted
// a·lg n + b curves with R²). Engine "" defaults to "auto": each cell
// resolves to the registry's recommendation for its protocol and n,
// which is what makes a 10³..10⁸ grid practical in one request.
type SweepSpec struct {
	// Protocols is the protocol axis (registry keys, at least one;
	// duplicates dropped, order preserved).
	Protocols []string `json:"protocols"`
	// Ns is the population axis (at least one; canonicalized to sorted
	// ascending, duplicates dropped).
	Ns []int `json:"ns"`
	// Ms is the optional knowledge-parameter axis for the PLL variants
	// (omitted = [0], the canonical ⌈lg n⌉).
	Ms []int `json:"ms,omitempty"`
	// Engine is "count", "agent", "batch", "hybrid" or "auto"
	// ("" = "auto", resolved per cell).
	Engine string `json:"engine,omitempty"`
	// Seed is the per-cell ensemble base seed; 0 derives one per cell
	// from the cell's canonical identity, so every cell is bit-identical
	// to the standalone seedless experiment (and its replicate 0 to the
	// seedless job) with the same spec.
	Seed uint64 `json:"seed,omitempty"`
	// MaxParallelTime caps each replicate, in parallel time units
	// (clamped like jobs).
	MaxParallelTime float64 `json:"maxParallelTime,omitempty"`
	// Replicates is the per-cell ensemble size (required, 1 ≤ R ≤ the
	// server's max-replicates limit).
	Replicates int `json:"replicates"`
	// CI, when positive, lets each cell stop early once the relative 95%
	// CI half-width of its mean time is ≤ CI.
	CI float64 `json:"ci,omitempty"`
	// MinReplicates is the per-cell early-stop floor (0 = 16; ignored
	// without CI).
	MinReplicates int `json:"minReplicates,omitempty"`
}

// key renders the canonical sweep cache key. Call only on canonicalized
// specs.
func (s SweepSpec) key() string {
	ns := make([]string, len(s.Ns))
	for i, n := range s.Ns {
		ns[i] = fmt.Sprint(n)
	}
	ms := make([]string, len(s.Ms))
	for i, m := range s.Ms {
		ms[i] = fmt.Sprint(m)
	}
	return fmt.Sprintf("sweep %s ns=%s ms=%s engine=%s seed=%d maxpt=%g r=%d ci=%g min=%d",
		strings.Join(s.Protocols, ","), strings.Join(ns, ","), strings.Join(ms, ","),
		s.Engine, s.Seed, s.MaxParallelTime, s.Replicates, s.CI, s.MinReplicates)
}

// SweepCell is the JSON rendering of one grid point's state.
type SweepCell struct {
	Index    int    `json:"index"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	M        int    `json:"m,omitempty"`
	// Engine is the resolved concrete engine the cell runs on.
	Engine string `json:"engine"`
	// Seed is the cell's ensemble base seed (derived per cell when the
	// sweep's seed was 0).
	Seed uint64 `json:"seed"`
	// ExperimentID is the id of the equivalent standalone experiment:
	// the cell's result is indexed and persisted under it, so it can be
	// fetched (and was perhaps served from) /v1/experiments/{id}.
	ExperimentID string `json:"experimentId"`
	State        State  `json:"state"`
	// Source reports where a finished cell's aggregates came from:
	// "run" (simulated by this sweep), "cache" (an identical finished
	// experiment was already in memory), "joined" (an identical
	// experiment was in flight and the sweep waited for it), or "store"
	// (restored from the durable store).
	Source     string               `json:"source,omitempty"`
	Aggregates *ensemble.Aggregates `json:"aggregates,omitempty"`
	// Distribution reports where a simulated cell's replicate ranges
	// executed (cells served from cache/store carry the original run's
	// placement when it is still known). Operational metadata only — the
	// aggregates are bit-identical however the ranges were placed.
	Distribution *cluster.Distribution `json:"distribution,omitempty"`
}

// sweepData is the persisted payload of a finished sweep.
type sweepData struct {
	Cells   []SweepCell    `json:"cells"`
	Summary *sweep.Summary `json:"summary,omitempty"`
}

// Sweep is one managed parameter sweep: the generic run core plus the
// grid state. All exported methods are safe for concurrent use.
type Sweep struct {
	*runcore.Run[SweepCell]

	spec  SweepSpec // canonicalized
	cells []sweepCellPlan

	// Guarded by the embedded Run's lock.
	views      []SweepCell // per-cell state, the stream's replay
	summary    *sweep.Summary
	wallMillis int64
}

// sweepCellPlan is the execution plan of one cell: its grid identity
// plus the canonical experiment it is equivalent to.
type sweepCellPlan struct {
	cell    sweep.Cell
	expSpec ExperimentSpec // canonical
	espec   ensemble.Spec
	key     string
	id      string
}

// SweepView is the JSON rendering of a sweep's current state.
type SweepView struct {
	ID    string    `json:"id"`
	State State     `json:"state"`
	Spec  SweepSpec `json:"spec"`
	Error string    `json:"error,omitempty"`
	// Cells is the grid in cell order, each with its lifecycle state and
	// (once finished) aggregates.
	Cells []SweepCell `json:"cells"`
	// Summary is the scaling summary: per-(protocol, m) fitted
	// a·lg n + b curves with R² and the log-log exponent — present once
	// the sweep is done.
	Summary    *sweep.Summary `json:"summary,omitempty"`
	Restored   bool           `json:"restored,omitempty"`
	Created    time.Time      `json:"created"`
	Started    *time.Time     `json:"started,omitempty"`
	Finished   *time.Time     `json:"finished,omitempty"`
	WallMillis int64          `json:"wallMillis,omitempty"`
}

// View renders the sweep for JSON responses.
func (s *Sweep) View() SweepView {
	meta := s.Meta()
	v := SweepView{
		ID:       s.ID,
		State:    meta.State,
		Spec:     s.spec,
		Error:    meta.Err,
		Restored: meta.Restored,
		Created:  meta.Created,
		Started:  meta.Started,
		Finished: meta.Finished,
	}
	s.Locked(func() {
		v.Cells = append([]SweepCell(nil), s.views...)
		v.Summary = s.summary
		v.WallMillis = s.wallMillis
	})
	return v
}

// Summary returns the scaling summary, or nil while the sweep is not
// done.
func (s *Sweep) Summary() *sweep.Summary {
	var sum *sweep.Summary
	s.Locked(func() { sum = s.summary })
	return sum
}

// Cells returns the per-cell states in cell order.
func (s *Sweep) Cells() []SweepCell {
	var cells []SweepCell
	s.Locked(func() { cells = append([]SweepCell(nil), s.views...) })
	return cells
}

// Subscribe returns the per-cell states so far plus a channel of
// subsequent cell updates; the channel is closed when the sweep
// finishes, mirroring Job.Subscribe's discipline.
func (s *Sweep) Subscribe() (replay []SweepCell, live <-chan SweepCell, cancel func()) {
	live, cancel = s.Run.Subscribe(256, func() {
		replay = append([]SweepCell(nil), s.views...)
	})
	return replay, live, cancel
}

// updateCell stores a cell's new state and fans it out.
func (s *Sweep) updateCell(c SweepCell) {
	s.Publish(c, func() { s.views[c.Index] = c })
}

// CanonicalizeSweep resolves a SweepSpec's defaults, expands and
// validates its grid against the registry and the manager's limits, and
// returns the canonical spec with its cell plans. Errors wrap
// registry.ErrBadSpec.
func (m *Manager) CanonicalizeSweep(spec SweepSpec) (SweepSpec, []sweepCellPlan, error) {
	if spec.Engine == "" {
		spec.Engine = pp.EngineAuto.String()
	}
	engine, err := pp.ParseEngine(spec.Engine)
	if err != nil {
		return SweepSpec{}, nil, fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
	}
	canon, cells, err := sweep.Canonicalize(sweep.Spec{
		Protocols:       spec.Protocols,
		Ns:              spec.Ns,
		Ms:              spec.Ms,
		Engine:          engine,
		Seed:            spec.Seed,
		Replicates:      spec.Replicates,
		CITarget:        spec.CI,
		MinReplicates:   spec.MinReplicates,
		MaxParallelTime: spec.MaxParallelTime,
		ObsCap:          m.opts.MaxSnapshots,
	})
	if err != nil {
		return SweepSpec{}, nil, err
	}
	if len(cells) > m.opts.MaxSweepCells {
		return SweepSpec{}, nil, fmt.Errorf(
			"%w: sweep expands to %d cells, over this server's limit of %d",
			registry.ErrBadSpec, len(cells), m.opts.MaxSweepCells)
	}
	spec.Protocols = canon.Protocols
	spec.Ns = canon.Ns
	spec.Ms = canon.Ms

	// Re-canonicalize every cell as the standalone experiment it is
	// equivalent to: that applies the per-engine population limits and
	// the replicate limit, and yields the canonical experiment key/id the
	// cell's result is cached, deduplicated and persisted under.
	plans := make([]sweepCellPlan, len(cells))
	for i, cell := range cells {
		expSpec, espec, err := m.CanonicalizeExperiment(ExperimentSpec{
			Protocol:        cell.Protocol,
			N:               cell.N,
			Engine:          cell.Engine.String(),
			Seed:            spec.Seed, // 0 stays 0: the derivation is per cell
			M:               cell.M,
			MaxParallelTime: spec.MaxParallelTime,
			Replicates:      spec.Replicates,
			CI:              spec.CI,
			MinReplicates:   spec.MinReplicates,
		})
		if err != nil {
			return SweepSpec{}, nil, fmt.Errorf("cell %s n=%d m=%d: %w", cell.Protocol, cell.N, cell.M, err)
		}
		key := expSpec.key()
		plans[i] = sweepCellPlan{
			cell:    cell,
			expSpec: expSpec,
			espec:   espec,
			key:     key,
			id:      runID("e", key),
		}
	}
	return spec, plans, nil
}

// SubmitSweep canonicalizes spec and returns the sweep serving it: a
// cached finished one (cached = true, possibly restored from the
// durable store), an identical one already in flight, or a freshly
// queued one. It fails with ErrBusy when the sweep queue is full and an
// error wrapping registry.ErrBadSpec when the spec is invalid.
func (m *Manager) SubmitSweep(spec SweepSpec) (sw *Sweep, cached bool, err error) {
	canon, plans, err := m.CanonicalizeSweep(spec)
	if err != nil {
		return nil, false, err
	}
	key := canon.key()
	s, outcome, err := m.sweeps.Submit(key, runID("s", key), m.decodeSweep,
		func() (*Sweep, error) {
			s := newSweep(runcore.NewRun[SweepCell](runID("s", key)), canon, plans)
			if err := m.sweepClass.Enqueue(func() { m.runSweep(s) }); err != nil {
				s.Cancel()
				return nil, err
			}
			return s, nil
		})
	if err != nil {
		return nil, false, err
	}
	return s, outcome.Cached(), nil
}

// newSweep assembles a sweep with every cell queued.
func newSweep(run *runcore.Run[SweepCell], spec SweepSpec, plans []sweepCellPlan) *Sweep {
	s := &Sweep{Run: run, spec: spec, cells: plans}
	s.views = make([]SweepCell, len(plans))
	for i, p := range plans {
		s.views[i] = SweepCell{
			Index:        i,
			Protocol:     p.cell.Protocol,
			N:            p.cell.N,
			M:            p.cell.M,
			Engine:       p.cell.Engine.String(),
			Seed:         p.espec.Registry.Seed,
			ExperimentID: p.id,
			State:        StateQueued,
		}
	}
	return s
}

// GetSweep returns the sweep with the given id, restoring it from the
// durable store if it is no longer indexed in memory.
func (m *Manager) GetSweep(id string) (*Sweep, bool) {
	return m.sweeps.Get(id, m.decodeSweep)
}

// CancelSweep requests cancellation of the sweep with the given id,
// reporting whether it exists. Cancellation cascades: the in-flight
// cell's ensemble runs under the sweep's context, so it stops at its
// next chunk boundary and the remaining cells are never started.
func (m *Manager) CancelSweep(id string) bool {
	return m.sweeps.Cancel(id)
}

// decodeSweep reconstructs a finished sweep from a durable store record
// (the run core's restore-on-miss path).
func (m *Manager) decodeSweep(rec store.Record) (*Sweep, bool) {
	var spec SweepSpec
	var data sweepData
	if json.Unmarshal(rec.Spec, &spec) != nil || json.Unmarshal(rec.Data, &data) != nil {
		return nil, false
	}
	canon, plans, err := m.CanonicalizeSweep(spec)
	if err != nil || canon.key() != rec.Key || len(data.Cells) != len(plans) {
		return nil, false
	}
	s := newSweep(runcore.NewRestoredRun[SweepCell](rec.ID, rec.SavedAt), canon, plans)
	s.views = data.Cells
	s.summary = data.Summary
	return s, true
}

// runSweep executes one sweep to a terminal state. The cell loop is
// sweep.Run — the same executor behind cmd/sweep and the harness's
// Theorem 1 — with the manager's cache-aware runner substituted per
// cell (Options.RunCell): a cell whose identical experiment already
// finished is served from the experiment cache or the durable store,
// and a simulated cell is shared back into both, so sweeps, standalone
// experiments and restarts all see one result per canonical spec.
func (m *Manager) runSweep(s *Sweep) {
	key := s.spec.key()
	if !s.Begin(func() {
		// Runs under the run's lock, atomically with the canceled
		// transition: a subscriber whose channel closes can never observe
		// the canceled sweep with cells still marked queued.
		for i := range s.views {
			if !s.views[i].State.Terminal() {
				s.views[i].State = StateCanceled
			}
		}
	}) {
		m.metrics.recordRunState(store.KindSweep, StateCanceled)
		m.sweeps.Finished(key, s)
		return
	}
	start := time.Now()

	res, err := sweep.Run(s.Context(), m.sweepRunSpec(s.spec), sweep.Options{
		RunCell: func(ctx context.Context, cell sweep.Cell) (ensemble.Aggregates, error) {
			// Expansion is deterministic, so sweep.Run's cells line up
			// index-for-index with the plans canonicalized at submission.
			plan := s.cells[cell.Index]
			view := s.views[cell.Index]
			view.State = StateRunning
			s.updateCell(view)
			agg, source, dist, err := m.runSweepCell(ctx, plan, func(partial ensemble.Aggregates) {
				v := view
				v.Aggregates = &partial
				s.updateCell(v)
			})
			switch {
			case err == nil:
				view.State = StateDone
				view.Source = source
				view.Aggregates = &agg
				view.Distribution = dist
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				view.State = StateCanceled
			default:
				view.State = StateFailed
			}
			s.updateCell(view)
			return agg, err
		},
	})
	wall := time.Since(start).Milliseconds()
	switch {
	case err == nil:
		summary := res.Summary
		s.Finish(StateDone, "", func() {
			s.summary = &summary
			s.wallMillis = wall
		})
		m.metrics.recordRunState(store.KindSweep, StateDone)
		m.sweeps.Finished(key, s)
		var data sweepData
		s.Locked(func() {
			data = sweepData{Cells: append([]SweepCell(nil), s.views...), Summary: s.summary}
		})
		m.core.Persist(store.KindSweep, key, s.ID, s.spec, data)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.cancelCells(0)
		s.Finish(StateCanceled, "canceled", func() { s.wallMillis = wall })
		m.metrics.recordRunState(store.KindSweep, StateCanceled)
		m.sweeps.Finished(key, s)
	default:
		s.cancelCells(0)
		s.Finish(StateFailed, err.Error(), func() { s.wallMillis = wall })
		m.metrics.recordRunState(store.KindSweep, StateFailed)
		m.sweeps.Finished(key, s)
	}
}

// sweepRunSpec converts a canonical wire spec back into the sweep
// package's spec. The canonical spec already validated, so the engine
// parses; expansion in sweep.Run reproduces the submission's cell order
// exactly.
func (m *Manager) sweepRunSpec(spec SweepSpec) sweep.Spec {
	engine, err := pp.ParseEngine(spec.Engine)
	if err != nil {
		engine = pp.EngineAuto // unreachable for canonical specs
	}
	return sweep.Spec{
		Protocols:       spec.Protocols,
		Ns:              spec.Ns,
		Ms:              spec.Ms,
		Engine:          engine,
		Seed:            spec.Seed,
		Replicates:      spec.Replicates,
		CITarget:        spec.CI,
		MinReplicates:   spec.MinReplicates,
		MaxParallelTime: spec.MaxParallelTime,
		ObsCap:          m.opts.MaxSnapshots,
	}
}

// cancelCells marks every cell from index from on as canceled (cells
// already terminal keep their state).
func (s *Sweep) cancelCells(from int) {
	for i := from; i < len(s.views); i++ {
		v := s.views[i]
		if v.State.Terminal() {
			continue
		}
		v.State = StateCanceled
		s.updateCell(v)
	}
}

// runSweepCell produces one cell's aggregates: from the in-memory
// experiment cache if an identical finished experiment exists, by
// waiting on an identical experiment already in flight (the result is
// deterministic, so racing a duplicate simulation would only burn CPU),
// from the durable store if a record survives there, and by running the
// ensemble under the sweep's context otherwise — in which case the
// result is indexed as a finished experiment and persisted, exactly as
// if it had arrived through POST /v1/experiments.
func (m *Manager) runSweepCell(ctx context.Context, plan sweepCellPlan, onUpdate func(ensemble.Aggregates)) (ensemble.Aggregates, string, *cluster.Distribution, error) {
	if e, ok := m.exps.Lookup(plan.key); ok && e.State() == StateDone {
		if agg := e.Aggregates(); agg != nil {
			return *agg, "cache", e.Distribution(), nil
		}
	}
	if e, ok := m.exps.Get(plan.id, nil); ok && !e.State().Terminal() {
		select {
		case <-e.Done():
			if e.State() == StateDone {
				if agg := e.Aggregates(); agg != nil {
					return *agg, "joined", e.Distribution(), nil
				}
			}
			// The in-flight experiment was canceled or failed — neither is
			// the spec's deterministic outcome; fall through and simulate.
		case <-ctx.Done():
			return ensemble.Aggregates{}, "", nil, ctx.Err()
		}
	}
	if m.core.Store != nil {
		if rec, ok := m.core.Store.Get(store.KindExperiment, plan.key); ok {
			if e, ok := m.decodeExperiment(rec); ok {
				if agg := e.Aggregates(); agg != nil {
					return *agg, "store", nil, nil
				}
			}
		}
	}
	start := time.Now()
	agg, dist, err := m.runEnsemble(ctx, plan.espec, onUpdate)
	if err != nil {
		return ensemble.Aggregates{}, "", nil, err
	}
	m.metrics.recordEngineRun(plan.expSpec.Engine, ensembleInteractions(agg), time.Since(start))
	e := finishedExperiment(plan.id, plan.expSpec, plan.espec, agg, dist, time.Since(start).Milliseconds())
	m.exps.Finished(plan.key, e)
	m.core.Persist(store.KindExperiment, plan.key, plan.id, plan.expSpec, agg)
	return agg, "run", dist, nil
}
