package service

import "container/list"

// lru is a minimal least-recently-used map from canonical job keys to
// finished jobs. It is not safe for concurrent use; the Manager guards it
// with its own mutex. onEvict runs synchronously when an entry falls out,
// so the Manager can drop the evicted job from its id index too.
type lru struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[string]*list.Element
	onEvict func(*Job)
}

type lruEntry struct {
	key string
	job *Job
}

func newLRU(capacity int, onEvict func(*Job)) *lru {
	return &lru{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// get returns the cached job for key and marks it most recently used.
func (c *lru) get(key string) (*Job, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).job, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lru) put(key string, job *Job) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).job = job
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, job: job})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(c.entries, e.key)
		if c.onEvict != nil {
			c.onEvict(e.job)
		}
	}
}

// remove drops key without running the eviction hook.
func (c *lru) remove(key string) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *lru) len() int { return c.order.Len() }
