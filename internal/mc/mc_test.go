package mc

import (
	"fmt"
	"strings"
	"testing"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
)

func boolLess(a, b bool) bool { return !a && b }

func countLeaders[S comparable](proto pp.Protocol[S], cfg []S) int {
	leaders := 0
	for _, s := range cfg {
		if proto.Output(s) == pp.Leader {
			leaders++
		}
	}
	return leaders
}

// TestAngluinExactSpace: the constant-state protocol's reachable space from
// the all-leader configuration is exactly {k leaders, n−k followers} for
// k = 1..n — n configurations. A fully checkable textbook case.
func TestAngluinExactSpace(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		res := Explore[baseline.AngluinState](baseline.Angluin{}, n, boolLess,
			[]Invariant[baseline.AngluinState]{
				LeaderSafety[baseline.AngluinState](baseline.Angluin{}, 1),
			}, Options[baseline.AngluinState]{})
		if !res.Complete {
			t.Fatalf("n=%d: exploration incomplete", n)
		}
		if res.Violation != nil {
			t.Fatalf("n=%d: violation %+v", n, res.Violation)
		}
		if res.Explored != n {
			t.Fatalf("n=%d: explored %d configurations, want exactly %d", n, res.Explored, n)
		}
	}
}

// TestAngluinEdgeMonotone verifies leader-count monotonicity on every
// reachable transition, exhaustively.
func TestAngluinEdgeMonotone(t *testing.T) {
	proto := baseline.Angluin{}
	res := Explore[baseline.AngluinState](proto, 6, boolLess, nil,
		Options[baseline.AngluinState]{
			EdgeCheck: func(parent, child []baseline.AngluinState) error {
				if countLeaders[baseline.AngluinState](proto, child) >
					countLeaders[baseline.AngluinState](proto, parent) {
					return fmt.Errorf("leader count increased")
				}
				return nil
			},
		})
	if res.Violation != nil {
		t.Fatalf("violation: %+v", res.Violation)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
}

func stateLess(a, b core.State) bool { return fmt.Sprint(a) < fmt.Sprint(b) }

// TestPLLTwoAgentsExhaustive model-checks PLL with n = 2 (m = 1) over its
// ENTIRE reachable configuration space under arbitrary schedules: safety
// (at least one leader), canonical state form, and leader-count
// monotonicity on every edge. This is a proof by enumeration of the
// paper's per-module safety claims at this size.
func TestPLLTwoAgentsExhaustive(t *testing.T) {
	p := core.New(core.NewParams(2))
	proto := pp.Protocol[core.State](p)
	res := Explore[core.State](proto, 2, stateLess,
		[]Invariant[core.State]{
			LeaderSafety[core.State](proto, 1),
			StateInvariant[core.State]("canonical form", p.CheckCanonical),
		},
		Options[core.State]{
			Limit: 1 << 21,
			EdgeCheck: func(parent, child []core.State) error {
				if countLeaders[core.State](proto, child) > countLeaders[core.State](proto, parent) {
					return fmt.Errorf("leader count increased")
				}
				return nil
			},
		})
	if res.Violation != nil {
		t.Fatalf("violation: %+v", res.Violation)
	}
	if !res.Complete {
		t.Fatalf("n=2 space not exhausted after %d configurations", res.Explored)
	}
	if res.Explored < 100 {
		t.Fatalf("implausibly small reachable space: %d", res.Explored)
	}
	t.Logf("PLL n=2 reachable configurations: %d", res.Explored)
}

// TestPLLThreeAgentsBounded explores PLL with n = 3 up to a budget. The
// space is larger than n = 2 by orders of magnitude; within the budget no
// schedule may reach a violation.
func TestPLLThreeAgentsBounded(t *testing.T) {
	p := core.New(core.NewParams(3))
	proto := pp.Protocol[core.State](p)
	res := Explore[core.State](proto, 3, stateLess,
		[]Invariant[core.State]{
			LeaderSafety[core.State](proto, 1),
			StateInvariant[core.State]("canonical form", p.CheckCanonical),
		},
		Options[core.State]{Limit: 60_000})
	if res.Violation != nil {
		t.Fatalf("violation: %+v", res.Violation)
	}
	if res.Explored < 30_000 {
		t.Fatalf("explored only %d configurations", res.Explored)
	}
}

func symLessTest(a, b core.SymState) bool { return fmt.Sprint(a) < fmt.Sprint(b) }

// TestSymmetricPLLBounded model-checks the symmetric variant with n = 3:
// leader safety, canonical form, and the |F0| = |F1| fairness invariant,
// under arbitrary schedules up to the budget.
func TestSymmetricPLLBounded(t *testing.T) {
	p := core.NewSymmetric(core.NewParams(3))
	proto := pp.Protocol[core.SymState](p)
	coinBalance := Invariant[core.SymState]{
		Name: "|F0| = |F1|",
		Check: func(cfg []core.SymState) error {
			f0, f1 := 0, 0
			for _, s := range cfg {
				switch s.Coin {
				case core.CoinF0:
					f0++
				case core.CoinF1:
					f1++
				}
			}
			if f0 != f1 {
				return fmt.Errorf("|F0| = %d, |F1| = %d", f0, f1)
			}
			return nil
		},
	}
	res := Explore[core.SymState](proto, 3, symLessTest,
		[]Invariant[core.SymState]{
			LeaderSafety[core.SymState](proto, 1),
			StateInvariant[core.SymState]("canonical form", p.CheckCanonical),
			coinBalance,
		},
		Options[core.SymState]{Limit: 60_000})
	if res.Violation != nil {
		t.Fatalf("violation: %+v", res.Violation)
	}
	if res.Explored < 30_000 {
		t.Fatalf("explored only %d configurations", res.Explored)
	}
}

// TestViolationIsReported plants a deliberately broken invariant and
// checks the report shape.
func TestViolationIsReported(t *testing.T) {
	res := Explore[baseline.AngluinState](baseline.Angluin{}, 3, boolLess,
		[]Invariant[baseline.AngluinState]{
			{
				Name: "fewer than 3 leaders (false at the initial configuration)",
				Check: func(cfg []baseline.AngluinState) error {
					if countLeaders[baseline.AngluinState](baseline.Angluin{}, cfg) == 3 {
						return fmt.Errorf("all three are leaders")
					}
					return nil
				},
			},
		}, Options[baseline.AngluinState]{})
	if res.Violation == nil {
		t.Fatal("planted violation not reported")
	}
	if !strings.Contains(res.Violation.Invariant, "fewer than 3") {
		t.Fatalf("violation names wrong invariant: %+v", res.Violation)
	}
}

// TestLimitTruncates: a tiny limit must mark the exploration incomplete.
func TestLimitTruncates(t *testing.T) {
	p := core.New(core.NewParams(3))
	res := Explore[core.State](pp.Protocol[core.State](p), 3, stateLess, nil,
		Options[core.State]{Limit: 100})
	if res.Complete {
		t.Fatal("truncated exploration reported complete")
	}
	if res.Explored == 0 {
		t.Fatal("nothing explored")
	}
}

func TestExplorePanicsOnSingleton(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=1")
		}
	}()
	Explore[baseline.AngluinState](baseline.Angluin{}, 1, boolLess, nil,
		Options[baseline.AngluinState]{})
}
