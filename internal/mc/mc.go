// Package mc is a small explicit-state model checker for population
// protocols: it enumerates every configuration reachable from the initial
// configuration under ANY schedule (the nondeterministic semantics of
// Section 2, not just the uniformly random scheduler) and checks safety
// invariants on each.
//
// Configurations of anonymous agents are multisets of states, so the
// checker canonicalizes each configuration by sorting its state vector;
// this collapses the n! agent permutations and makes exhaustive
// exploration feasible for small populations. For PLL with n = 3 and
// m = 1 the reachable space is a few hundred thousand configurations —
// enough to *prove* (not sample) that, e.g., no schedule whatsoever can
// eliminate all leaders, the claim the paper argues once per module.
package mc

import (
	"fmt"
	"sort"

	"popproto/internal/pp"
)

// Result summarizes an exhaustive exploration.
type Result struct {
	// Explored is the number of distinct configurations visited.
	Explored int
	// Complete reports whether the whole reachable space was explored
	// (false if the Limit was hit first).
	Complete bool
	// Violation holds the first invariant violation found, if any.
	Violation *Violation
}

// Violation describes an invariant failure on a reachable configuration.
type Violation struct {
	// Invariant is the name of the violated invariant.
	Invariant string
	// Configuration is the offending canonical configuration.
	Configuration string
	// Detail is the checker's error.
	Detail error
}

// Invariant is a named predicate over configurations (multisets given as
// sorted slices).
type Invariant[S comparable] struct {
	// Name identifies the invariant in reports.
	Name string
	// Check returns an error if the configuration violates the invariant.
	Check func(config []S) error
}

// Options bounds and extends the exploration.
type Options[S comparable] struct {
	// Limit caps the number of distinct configurations explored
	// (0 means 1<<22).
	Limit int
	// EdgeCheck, if non-nil, is invoked on every explored transition
	// (parent configuration, successor configuration); a non-nil error is
	// reported as a violation. It is how step-relative properties such as
	// "the leader count never increases" are verified exhaustively.
	EdgeCheck func(parent, child []S) error
}

// Explore enumerates the configurations of proto on n agents reachable
// under any schedule, breadth-first, checking every invariant on every
// configuration. less must be a strict total order on S used for
// canonicalization.
func Explore[S comparable](
	proto pp.Protocol[S], n int, less func(a, b S) bool,
	invariants []Invariant[S], opt Options[S],
) Result {
	if n < 2 {
		panic("mc: need at least two agents")
	}
	limit := opt.Limit
	if limit <= 0 {
		limit = 1 << 22
	}

	canon := func(cfg []S) string {
		sorted := append([]S(nil), cfg...)
		sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		return fmt.Sprint(sorted)
	}

	init := make([]S, n)
	for i := range init {
		init[i] = proto.InitialState()
	}

	seen := make(map[string]struct{}, 1024)
	queue := [][]S{init}
	seen[canon(init)] = struct{}{}

	res := Result{}
	check := func(cfg []S) *Violation {
		for _, inv := range invariants {
			if err := inv.Check(cfg); err != nil {
				return &Violation{
					Invariant:     inv.Name,
					Configuration: canon(cfg),
					Detail:        err,
				}
			}
		}
		return nil
	}

	truncated := false
	for len(queue) > 0 {
		cfg := queue[0]
		queue = queue[1:]
		res.Explored++
		if v := check(cfg); v != nil {
			res.Violation = v
			return res
		}
		if len(seen) >= limit {
			// Stop expanding; drain what is queued. Incomplete.
			truncated = true
			continue
		}
		// Expand: every ordered pair of distinct agents may interact.
		// Because the configuration is a multiset, it suffices to pick
		// ordered pairs of *positions* in the state vector.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p, q := proto.Transition(cfg[i], cfg[j])
				if p == cfg[i] && q == cfg[j] {
					continue
				}
				next := append([]S(nil), cfg...)
				next[i], next[j] = p, q
				if opt.EdgeCheck != nil {
					if err := opt.EdgeCheck(cfg, next); err != nil {
						res.Violation = &Violation{
							Invariant:     "edge invariant",
							Configuration: canon(cfg),
							Detail:        err,
						}
						return res
					}
				}
				key := canon(next)
				if _, ok := seen[key]; ok {
					continue
				}
				seen[key] = struct{}{}
				queue = append(queue, next)
			}
		}
	}
	res.Complete = !truncated
	return res
}

// LeaderSafety returns the invariant "at least minLeaders agents output L",
// the per-module safety property of the paper ("never eliminates all
// leaders").
func LeaderSafety[S comparable](proto pp.Protocol[S], minLeaders int) Invariant[S] {
	return Invariant[S]{
		Name: fmt.Sprintf("at least %d leader(s)", minLeaders),
		Check: func(cfg []S) error {
			leaders := 0
			for _, s := range cfg {
				if proto.Output(s) == pp.Leader {
					leaders++
				}
			}
			if leaders < minLeaders {
				return fmt.Errorf("only %d leaders", leaders)
			}
			return nil
		},
	}
}

// StateInvariant lifts a per-state checker (such as core's CheckCanonical)
// to a configuration invariant.
func StateInvariant[S comparable](name string, check func(S) error) Invariant[S] {
	return Invariant[S]{
		Name: name,
		Check: func(cfg []S) error {
			for _, s := range cfg {
				if err := check(s); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
