// Package baseline implements the comparison protocols of Table 1 of the
// reproduced paper: the constant-state protocol of Angluin et al. 2006, a
// lottery protocol in the style of Alistarh et al. 2017, and an MST18-style
// max-ID protocol. Together with PLL they regenerate the table's
// states-versus-time trade-off empirically. The deliberate simplifications
// relative to the cited originals are documented in DESIGN.md §3.
package baseline

import "popproto/internal/pp"

// AngluinState is the two-value state space of the constant-state
// protocol: true = leader, false = follower.
type AngluinState = bool

// Angluin is the folklore constant-space leader election protocol from
// Angluin et al. 2006: all agents start as leaders and when two leaders
// meet the responder yields. It uses exactly 2 states and stabilizes in
// Θ(n) expected parallel time — the optimum for constant space by the
// Doty–Soloveichik Ω(n) lower bound (Table 2, row [DS18]).
type Angluin struct{}

// Name implements pp.Protocol.
func (Angluin) Name() string { return "Angluin2006" }

// InitialState implements pp.Protocol.
func (Angluin) InitialState() AngluinState { return true }

// Output implements pp.Protocol.
func (Angluin) Output(s AngluinState) pp.Role {
	if s {
		return pp.Leader
	}
	return pp.Follower
}

// Transition implements pp.Protocol: L×L → L×F, all else unchanged.
func (Angluin) Transition(a, b AngluinState) (AngluinState, AngluinState) {
	if a && b {
		return true, false
	}
	return a, b
}

// StateCount returns the number of states per agent (Table 1 column).
func (Angluin) StateCount() int { return 2 }

// ExpectedSteps returns the exact expected number of interactions to
// stabilization from the all-leader initial configuration: with k leaders
// a duel happens with probability k(k−1)/(n(n−1)) per step, so
//
//	E[steps] = n(n−1) · Σ_{k=2..n} 1/(k(k−1)) = n(n−1)·(1 − 1/n) = (n−1)².
//
// The closed form is used as an analytic cross-check of the simulation
// engine: measured means must match it within confidence intervals.
func (Angluin) ExpectedSteps(n int) float64 {
	if n < 1 {
		panic("baseline: population size < 1")
	}
	return float64(n-1) * float64(n-1)
}
