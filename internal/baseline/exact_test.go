package baseline

import (
	"math"
	"testing"

	"popproto/internal/pp"
	"popproto/internal/stats"
)

// TestAngluinExpectedStepsClosedForm sanity-checks the closed form against
// the harmonic-difference sum it collapses from.
func TestAngluinExpectedStepsClosedForm(t *testing.T) {
	for _, n := range []int{2, 3, 10, 100} {
		var sum float64
		for k := 2; k <= n; k++ {
			sum += 1 / (float64(k) * float64(k-1))
		}
		want := float64(n) * float64(n-1) * sum
		if got := (Angluin{}).ExpectedSteps(n); math.Abs(got-want) > 1e-6*want {
			t.Errorf("n=%d: closed form %v, sum %v", n, got, want)
		}
	}
}

// TestEngineMatchesExactExpectation is the analytic cross-check of the
// whole simulation engine: the measured mean stabilization step count of
// the Angluin protocol must agree with the exact expectation (n−1)²
// within a 4-sigma confidence band. A systematic scheduler bias (wrong
// pair distribution, off-by-one step accounting, census bugs) would land
// far outside the band.
func TestEngineMatchesExactExpectation(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		const repCount = 400
		results := pp.MeasureStabilization[AngluinState](Angluin{}, n, repCount, 99,
			uint64(n)*uint64(n)*1000, 0)
		steps := make([]float64, repCount)
		for i, r := range results {
			if !r.Stabilized {
				t.Fatalf("n=%d rep %d did not stabilize", n, i)
			}
			steps[i] = float64(r.Steps)
		}
		s := stats.Summarize(steps)
		exact := (Angluin{}).ExpectedSteps(n)
		band := 4 * s.SEM()
		if math.Abs(s.Mean-exact) > band {
			t.Errorf("n=%d: measured %.1f ± %.1f vs exact %.1f (|Δ| > 4·SEM)",
				n, s.Mean, s.SEM(), exact)
		}
	}
}

func TestExpectedStepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	Angluin{}.ExpectedSteps(0)
}
