package baseline

import (
	"testing"
	"testing/quick"

	"popproto/internal/pp"
)

func TestAngluinTransitionTable(t *testing.T) {
	var p Angluin
	cases := []struct {
		a, b, wantA, wantB AngluinState
	}{
		{true, true, true, false},  // duel: responder yields
		{true, false, true, false}, // leader-follower: no change
		{false, true, false, true}, // follower-leader: no change
		{false, false, false, false},
	}
	for _, c := range cases {
		gotA, gotB := p.Transition(c.a, c.b)
		if gotA != c.wantA || gotB != c.wantB {
			t.Errorf("Transition(%v,%v) = (%v,%v), want (%v,%v)",
				c.a, c.b, gotA, gotB, c.wantA, c.wantB)
		}
	}
	if p.StateCount() != 2 {
		t.Errorf("StateCount = %d", p.StateCount())
	}
}

func TestAngluinStabilizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		sim := pp.NewSimulator[AngluinState](Angluin{}, n, uint64(n))
		budget := uint64(n) * uint64(n) * 50
		if budget < 1000 {
			budget = 1000
		}
		if _, ok := sim.RunUntilLeaders(1, budget); !ok {
			t.Fatalf("n=%d: did not stabilize", n)
		}
		if !sim.VerifyStable(uint64(100 * n)) {
			t.Fatalf("n=%d: unstable", n)
		}
	}
}

// TestAngluinLinearTimeShape: the constant-state protocol's expected
// parallel time grows roughly linearly in n (Ω(n) by DS18). Doubling n
// should roughly double the time; we assert at least a 1.4× growth to
// reject sublinear behaviour while tolerating run-to-run noise.
func TestAngluinLinearTimeShape(t *testing.T) {
	mean := func(n int) float64 {
		res := pp.MeasureStabilization[AngluinState](Angluin{}, n, 30, 7, uint64(n)*uint64(n)*50, 0)
		var sum float64
		for _, r := range res {
			sum += r.ParallelTime
		}
		return sum / float64(len(res))
	}
	t128, t256, t512 := mean(128), mean(256), mean(512)
	if t256/t128 < 1.4 || t512/t256 < 1.4 {
		t.Fatalf("growth too slow for linear time: %.1f -> %.1f -> %.1f", t128, t256, t512)
	}
}

func TestLotteryFlipSemantics(t *testing.T) {
	l := NewLottery(1024)
	init := l.InitialState()

	a, b := l.Transition(init, init)
	if a.Level != 1 || a.Done {
		t.Fatalf("initiator after first flip: %+v", a)
	}
	if !b.Done || b.Level != 0 {
		t.Fatalf("responder after first flip: %+v", b)
	}

	// A done agent no longer flips.
	a2, _ := l.Transition(b, init)
	if a2.Level != 0 {
		t.Fatalf("done agent flipped: %+v", a2)
	}
}

func TestLotteryEpidemicAndDuel(t *testing.T) {
	l := NewLottery(1024)
	hi := LotteryState{Level: 5, Done: true, Leader: true}
	lo := LotteryState{Level: 2, Done: true, Leader: true}

	a, b := l.Transition(hi, lo)
	if !a.Leader || b.Leader || b.Level != 5 {
		t.Fatalf("epidemic: %+v, %+v", a, b)
	}

	// Equal levels: responder yields.
	a, b = l.Transition(hi, hi)
	if !a.Leader || b.Leader {
		t.Fatalf("duel: %+v, %+v", a, b)
	}

	// Follower carries the max onward without becoming a leader.
	f := LotteryState{Level: 9, Done: true, Leader: false}
	a, b = l.Transition(f, hi)
	if a.Leader || b.Leader || b.Level != 9 {
		t.Fatalf("follower epidemic: %+v, %+v", a, b)
	}
}

func TestLotteryLevelSaturates(t *testing.T) {
	l := NewLottery(1024)
	s := LotteryState{Level: uint16(l.LevelMax()), Leader: true}
	a, _ := l.Transition(s, l.InitialState())
	if int(a.Level) != l.LevelMax() {
		t.Fatalf("level overflowed: %+v", a)
	}
}

func TestLotteryStabilizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 64, 256} {
		l := NewLottery(n)
		sim := pp.NewSimulator[LotteryState](l, n, uint64(n)+5)
		budget := uint64(n)*uint64(n)*50 + 10_000
		if _, ok := sim.RunUntilLeaders(1, budget); !ok {
			t.Fatalf("n=%d: did not stabilize", n)
		}
		if !sim.VerifyStable(uint64(100 * n)) {
			t.Fatalf("n=%d: unstable", n)
		}
	}
}

func TestMaxIDAssembly(t *testing.T) {
	m := NewMaxID(16) // width 8
	if m.Width() != 8 {
		t.Fatalf("width = %d, want 8", m.Width())
	}
	a, b := m.Transition(m.InitialState(), m.InitialState())
	if a.ID != 0 || a.Index != 1 {
		t.Fatalf("initiator bit: %+v", a)
	}
	if b.ID != 1 || b.Index != 1 {
		t.Fatalf("responder bit: %+v", b)
	}
}

func TestMaxIDEpidemicAndDuel(t *testing.T) {
	m := NewMaxID(16)
	w := uint8(m.Width())
	hi := MaxIDState{ID: 200, Index: w, Leader: true}
	lo := MaxIDState{ID: 100, Index: w, Leader: true}

	a, b := m.Transition(hi, lo)
	if !a.Leader || b.Leader || b.ID != 200 {
		t.Fatalf("epidemic: %+v, %+v", a, b)
	}

	a, b = m.Transition(hi, hi)
	if !a.Leader || b.Leader {
		t.Fatalf("duel: %+v, %+v", a, b)
	}

	// Incomplete agents are shielded from the epidemic.
	part := MaxIDState{ID: 0, Index: 1, Leader: true}
	a, b = m.Transition(part, hi)
	if !a.Leader {
		t.Fatalf("incomplete agent eliminated: %+v", a)
	}
	_ = b
}

func TestMaxIDStabilizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 64, 256, 1024} {
		m := NewMaxID(n)
		sim := pp.NewSimulator[MaxIDState](m, n, uint64(n)+13)
		budget := uint64(n)*uint64(n)*20 + 100_000
		if _, ok := sim.RunUntilLeaders(1, budget); !ok {
			t.Fatalf("n=%d: did not stabilize", n)
		}
		if !sim.VerifyStable(uint64(100 * n)) {
			t.Fatalf("n=%d: unstable", n)
		}
	}
}

// TestQuickLeaderMonotone: none of the baselines ever mints a new leader.
func TestQuickLeaderMonotone(t *testing.T) {
	lot := NewLottery(256)
	mid := NewMaxID(256)
	count := func(bs ...bool) int {
		c := 0
		for _, b := range bs {
			if b {
				c++
			}
		}
		return c
	}
	f := func(l1, l2, d1, d2 bool, v1, v2 uint16) bool {
		a := LotteryState{Level: v1 % 51, Done: d1, Leader: l1}
		b := LotteryState{Level: v2 % 51, Done: d2, Leader: l2}
		a2, b2 := lot.Transition(a, b)
		if count(a2.Leader, b2.Leader) > count(a.Leader, b.Leader) {
			return false
		}
		am := MaxIDState{ID: uint64(v1), Index: uint8(v1 % 17), Leader: l1}
		bm := MaxIDState{ID: uint64(v2), Index: uint8(v2 % 17), Leader: l2}
		am2, bm2 := mid.Transition(am, bm)
		return count(am2.Leader, bm2.Leader) <= count(am.Leader, bm.Leader)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorsPanicOnBadN(t *testing.T) {
	for name, f := range map[string]func(){
		"lottery": func() { NewLottery(0) },
		"maxid":   func() { NewMaxID(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor accepted n=0", name)
				}
			}()
			f()
		}()
	}
}

func TestStateCounts(t *testing.T) {
	if got := NewLottery(1024).StateCount(); got != 51*4 {
		t.Errorf("lottery StateCount = %d, want %d", got, 51*4)
	}
	if got := NewMaxID(4).Width(); got != 4 {
		t.Errorf("MaxID(4) width = %d, want 4", got)
	}
	if got := NewMaxID(4).StateCount(); got != 2*(1+2+4+8+16) {
		t.Errorf("MaxID(4) StateCount = %d, want %d", got, 2*31)
	}
}
