package baseline

import (
	"fmt"

	"popproto/internal/core"
	"popproto/internal/pp"
)

// LotteryState is the agent state of the Lottery protocol: the geometric
// lottery level, the flipping flag and the output.
type LotteryState struct {
	// Level counts the heads seen before the first tail, then carries the
	// largest level learned through the epidemic.
	Level uint16
	// Done reports that the agent saw its first tail and stopped flipping.
	Done bool
	// Leader is the output variable.
	Leader bool
}

// Lottery is a leader election protocol in the style of the lottery
// protocol of Alistarh et al. 2017, reduced to its core as described in
// Section 3.1.1 of the reproduced paper: every agent flips a fair coin per
// interaction it participates in (initiator = heads, responder = tails),
// counting heads until the first tail; the maximum level then spreads by
// one-way epidemic and only maximum-level agents stay leaders; residual
// ties resolve by direct duel. See DESIGN.md §3 for the relation to the
// original (which adds phase machinery to reach polylog time).
//
// The protocol uses Θ(log n) states and stabilizes in Θ(n) expected
// parallel time — fast (O(log n)) with constant probability, but the
// Θ(1)-probability residual ties cost Θ(n), which is precisely the gap
// PLL's Tournament+BackUp combination closes.
type Lottery struct {
	levelMax uint16
}

// NewLottery returns the protocol sized for populations of about n agents
// (the level cap is 5·⌈lg n⌉, matching PLL's lmax). It panics if n < 1.
func NewLottery(n int) *Lottery {
	if n < 1 {
		panic(fmt.Sprintf("baseline: population size %d < 1", n))
	}
	m := max(core.CeilLog2(n), 1)
	return &Lottery{levelMax: uint16(5 * m)}
}

// LevelMax returns the level cap.
func (l *Lottery) LevelMax() int { return int(l.levelMax) }

// Name implements pp.Protocol.
func (l *Lottery) Name() string { return "Lottery" }

// InitialState implements pp.Protocol.
func (l *Lottery) InitialState() LotteryState {
	return LotteryState{Leader: true}
}

// Output implements pp.Protocol.
func (l *Lottery) Output(s LotteryState) pp.Role {
	if s.Leader {
		return pp.Leader
	}
	return pp.Follower
}

// Transition implements pp.Protocol.
func (l *Lottery) Transition(a, b LotteryState) (LotteryState, LotteryState) {
	// The interaction is a simultaneous coin flip for both participants:
	// heads for the initiator, tails for the responder (Section 3.1.1).
	if !a.Done && a.Leader {
		a.Level = min(a.Level+1, l.levelMax)
	}
	if !b.Done && b.Leader {
		b.Done = true
	}

	// One-way epidemic of the maximum level among stopped agents, with
	// elimination of lagging leaders.
	if a.Done && b.Done {
		switch {
		case a.Level < b.Level:
			a.Level = b.Level
			a.Leader = false
		case b.Level < a.Level:
			b.Level = a.Level
			b.Leader = false
		default:
			// Residual duel between equal-level stopped leaders.
			if a.Leader && b.Leader {
				b.Leader = false
			}
		}
	}
	return a, b
}

// StateCount returns the number of states per agent (Table 1 column):
// level × done × leader.
func (l *Lottery) StateCount() int { return (int(l.levelMax) + 1) * 2 * 2 }
