package baseline

import (
	"fmt"

	"popproto/internal/core"
	"popproto/internal/pp"
)

// MaxIDState is the agent state of the MaxID protocol.
type MaxIDState struct {
	// ID is the random identifier assembled so far (Index bits), then the
	// largest identifier learned through the epidemic.
	ID uint64
	// Index counts assembled bits; reaching the protocol's width means the
	// identifier is complete.
	Index uint8
	// Leader is the output variable.
	Leader bool
}

// MaxID is an MST18-style protocol (Michail, Spirakis, Theofilatos 2018:
// O(n) states, O(log n) time): every agent assembles a random identifier
// of 2⌈lg n⌉ bits from its interaction roles, the maximum identifier
// spreads by one-way epidemic, and non-maximal agents yield. With a
// polynomially large identifier space the maximum is unique with
// probability 1 − O(1/n), so the expected stabilization time is
// O(log n) + O(1/n)·O(n) = O(log n); the identifier space is what buys
// the speed, which is Table 1's "linear states / log time" row shape.
// DESIGN.md §3 records the differences from the original.
type MaxID struct {
	width uint8
}

// NewMaxID returns the protocol sized for populations of about n agents:
// identifier width 2·⌈lg n⌉ bits (at least 2, at most 60). It panics if
// n < 1.
func NewMaxID(n int) *MaxID {
	if n < 1 {
		panic(fmt.Sprintf("baseline: population size %d < 1", n))
	}
	w := 2 * core.CeilLog2(n)
	w = max(w, 2)
	w = min(w, 60)
	return &MaxID{width: uint8(w)}
}

// Width returns the identifier width in bits.
func (m *MaxID) Width() int { return int(m.width) }

// Name implements pp.Protocol.
func (m *MaxID) Name() string { return "MaxID" }

// InitialState implements pp.Protocol.
func (m *MaxID) InitialState() MaxIDState {
	return MaxIDState{Leader: true}
}

// Output implements pp.Protocol.
func (m *MaxID) Output(s MaxIDState) pp.Role {
	if s.Leader {
		return pp.Leader
	}
	return pp.Follower
}

// Transition implements pp.Protocol.
func (m *MaxID) Transition(a, b MaxIDState) (MaxIDState, MaxIDState) {
	// Identifier assembly: both participants extend, with complementary
	// bits (initiator 0, responder 1) — two agents that ever met directly
	// are guaranteed to differ at that position.
	if a.Index < m.width {
		a.ID = 2 * a.ID
		a.Index++
	}
	if b.Index < m.width {
		b.ID = 2*b.ID + 1
		b.Index++
	}

	// One-way epidemic of the maximum completed identifier.
	if a.Index == m.width && b.Index == m.width {
		switch {
		case a.ID < b.ID:
			a.ID = b.ID
			a.Leader = false
		case b.ID < a.ID:
			b.ID = a.ID
			b.Leader = false
		default:
			// Identical identifiers: direct duel.
			if a.Leader && b.Leader {
				b.Leader = false
			}
		}
	}
	return a, b
}

// StateCount returns the number of states per agent (Table 1 column),
// dominated by the 2^width completed identifiers: Θ(n²) for the default
// width — polynomial, the row shape of MST18.
func (m *MaxID) StateCount() int {
	total := 0
	for i := 0; i <= int(m.width); i++ {
		total += 1 << uint(min(i, 62))
		if total < 0 { // overflow guard
			return int(^uint(0) >> 1)
		}
	}
	return 2 * total // × leader flag
}
