package epidemic

import (
	"math"
	"testing"

	"popproto/internal/rng"
	"popproto/internal/stats"
)

func TestRunShapeInvariants(t *testing.T) {
	r := rng.New(1)
	for _, sim := range []func(int, int, *rng.Source) Run{SimulatePairs, SimulateJump} {
		for _, c := range []struct{ n, sub int }{{2, 2}, {10, 10}, {50, 25}, {100, 1}} {
			run := sim(c.n, c.sub, r)
			if len(run.InfectionSteps) != c.sub {
				t.Fatalf("n=%d sub=%d: %d infection steps", c.n, c.sub, len(run.InfectionSteps))
			}
			if run.InfectionSteps[0] != 0 {
				t.Fatalf("seed not at step 0: %v", run.InfectionSteps[0])
			}
			for k := 1; k < len(run.InfectionSteps); k++ {
				if run.InfectionSteps[k] <= run.InfectionSteps[k-1] {
					t.Fatalf("infection steps not strictly increasing: %v", run.InfectionSteps)
				}
			}
		}
	}
}

func TestValidation(t *testing.T) {
	r := rng.New(1)
	for name, f := range map[string]func(){
		"n too small":    func() { SimulatePairs(1, 1, r) },
		"sub zero":       func() { SimulateJump(10, 0, r) },
		"sub over n":     func() { SimulateJump(10, 11, r) },
		"pairs sub over": func() { SimulatePairs(10, 11, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestJumpMatchesPairs cross-validates the geometric-jump simulator against
// the literal pair-sampled process with a two-sample KS test on completion
// times. They implement the same distribution, so the test must accept.
func TestJumpMatchesPairs(t *testing.T) {
	const n, sub, reps = 60, 30, 400
	r := rng.New(42)
	a := make([]float64, reps)
	b := make([]float64, reps)
	for i := 0; i < reps; i++ {
		a[i] = float64(SimulatePairs(n, sub, r.Split()).CompletionStep())
		b[i] = float64(SimulateJump(n, sub, r.Split()).CompletionStep())
	}
	ks := stats.KSTwoSample(a, b)
	if ks.P < 0.001 {
		t.Fatalf("jump and pair simulators disagree: %+v", ks)
	}
}

// TestCompletionScalesAsNLogN: the full-population epidemic finishes in
// Θ(n log n) interactions (Angluin et al. 2008). The per-(n·ln n) constant
// must be stable across n — between 1 and 4 for all sizes.
func TestCompletionScalesAsNLogN(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		const reps = 50
		var sum float64
		for i := 0; i < reps; i++ {
			sum += float64(SimulateJump(n, n, r.Split()).CompletionStep())
		}
		mean := sum / reps
		c := mean / (float64(n) * math.Log(float64(n)))
		if c < 1 || c > 4 {
			t.Fatalf("n=%d: completion/(n ln n) = %.2f outside [1, 4]", n, c)
		}
	}
}

// TestLemma2BoundHolds: the empirical violation probability must stay below
// the paper's bound n·e^{−t/n} wherever that bound is nontrivial (< 1).
func TestLemma2BoundHolds(t *testing.T) {
	const reps = 300
	for _, c := range []struct {
		n, sub int
	}{{256, 256}, {256, 128}, {512, 128}} {
		times := CompletionTimes(c.n, c.sub, reps, uint64(c.n*31+c.sub))
		// Pick t so the bound is a small but testable probability.
		for _, tPar := range []float64{3, 5, 8} {
			tSteps := tPar * float64(c.n) * math.Log(float64(c.n)) / math.Log(2)
			bound := Lemma2Bound(c.n, tSteps)
			if bound >= 1 {
				continue
			}
			budget := Lemma2Steps(c.n, c.sub, tSteps)
			violations := 0
			for _, ct := range times {
				if ct > budget {
					violations++
				}
			}
			frac := float64(violations) / reps
			if frac > bound+0.02 { // slack for Monte Carlo noise
				t.Fatalf("n=%d sub=%d t=%v: violation rate %.4f exceeds bound %.4f",
					c.n, c.sub, tPar, frac, bound)
			}
		}
	}
}

func TestLemma2Helpers(t *testing.T) {
	if b := Lemma2Bound(100, 0); b != 1 {
		t.Fatalf("bound at t=0 should clamp to 1, got %v", b)
	}
	if b := Lemma2Bound(100, 100*math.Log(10000)); !almostEq(b, 0.01, 1e-9) {
		t.Fatalf("bound = %v, want 0.01", b)
	}
	// 2⌈n/n'⌉t with n=10, n'=3 → ⌈10/3⌉ = 4 → 8t.
	if s := Lemma2Steps(10, 3, 5); s != 40 {
		t.Fatalf("steps = %d, want 40", s)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSubPopulationSlowdown: infecting a sub-population of half the size
// takes roughly the 2⌈n/n'⌉ factor longer per unit t, i.e. completion
// times grow as the sub-population shrinks relative to n.
func TestSubPopulationSlowdown(t *testing.T) {
	const n = 1024
	r := rng.New(9)
	mean := func(sub int) float64 {
		const reps = 60
		var sum float64
		for i := 0; i < reps; i++ {
			sum += float64(SimulateJump(n, sub, r.Split()).CompletionStep())
		}
		return sum / reps
	}
	full := mean(n)
	half := mean(n / 2)
	quarter := mean(n / 4)
	if half <= full*0.9 {
		t.Fatalf("half-population epidemic faster than full: %v vs %v", half, full)
	}
	if quarter <= half*0.9 {
		t.Fatalf("quarter-population epidemic faster than half: %v vs %v", quarter, half)
	}
}

func BenchmarkSimulateJump(b *testing.B) {
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateJump(1<<16, 1<<16, r)
	}
}

func BenchmarkSimulatePairs(b *testing.B) {
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulatePairs(1<<10, 1<<10, r)
	}
}
