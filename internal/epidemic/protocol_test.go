package epidemic_test

import (
	"math"
	"testing"

	"popproto/internal/epidemic"
	"popproto/internal/pp"
)

func TestSICoversPopulation(t *testing.T) {
	for _, engine := range pp.Engines() {
		t.Run(engine.String(), func(t *testing.T) {
			const n = 2000
			sim := pp.NewRunner[epidemic.SIState](engine, epidemic.SI{}, n, 11)
			if got := sim.Leaders(); got != n {
				t.Fatalf("initial uncovered count = %d, want %d", got, n)
			}
			budget := uint64(200 * n * int(math.Ceil(math.Log2(n))))
			if _, ok := sim.RunUntilLeaders(0, budget); !ok {
				t.Fatalf("epidemic did not cover n=%d within %d steps (%d uncovered)",
					n, budget, sim.Leaders())
			}
			if got := sim.Census()[epidemic.Infected]; got != n {
				t.Errorf("infected census = %d, want %d", got, n)
			}
			// Full coverage is absorbing: no output may change afterwards.
			if !sim.VerifyStable(uint64(10 * n)) {
				t.Error("outputs changed after full coverage")
			}
		})
	}
}

func TestSITransitionTable(t *testing.T) {
	var p epidemic.SI
	cases := []struct {
		a, b, wantA, wantB epidemic.SIState
	}{
		{epidemic.Virgin, epidemic.Virgin, epidemic.Infected, epidemic.Susceptible},
		{epidemic.Virgin, epidemic.Susceptible, epidemic.Susceptible, epidemic.Susceptible},
		{epidemic.Virgin, epidemic.Infected, epidemic.Infected, epidemic.Infected},
		{epidemic.Infected, epidemic.Virgin, epidemic.Infected, epidemic.Infected},
		{epidemic.Susceptible, epidemic.Infected, epidemic.Infected, epidemic.Infected},
		{epidemic.Susceptible, epidemic.Susceptible, epidemic.Susceptible, epidemic.Susceptible},
		{epidemic.Infected, epidemic.Infected, epidemic.Infected, epidemic.Infected},
	}
	for _, c := range cases {
		gotA, gotB := p.Transition(c.a, c.b)
		if gotA != c.wantA || gotB != c.wantB {
			t.Errorf("Transition(%v, %v) = (%v, %v), want (%v, %v)",
				c.a, c.b, gotA, gotB, c.wantA, c.wantB)
		}
	}
}
