// Package epidemic implements the one-way epidemic process of Angluin,
// Aspnes and Eisenstat 2008, the workhorse of every module in the
// reproduced paper, together with the tail bound of its Lemma 2.
//
// An epidemic runs in a sub-population V' ⊆ V of size n' inside a
// population of size n: one agent starts infected, and an interaction
// infects its V'-member participant if the other participant is already
// infected. Lemma 2 bounds the probability that the epidemic is unfinished
// after 2⌈n/n'⌉·t interactions by n·e^{−t/n}.
//
// Two simulators are provided. SimulatePairs samples the scheduler
// step-by-step and is the literal process. SimulateJump observes that with
// k infected agents every step is an independent Bernoulli trial with
// success probability p_k = 2k(n'−k)/(n(n−1)), so the waiting time between
// infections is geometric; it samples those waits directly in O(n') time
// per run, exactly preserving the distribution of infection times. The
// tests cross-validate the two with a Kolmogorov–Smirnov check.
package epidemic

import (
	"fmt"
	"math"

	"popproto/internal/rng"
)

// Run records one epidemic execution: InfectionSteps[k] is the interaction
// count at which the (k+1)-th member of V' became infected
// (InfectionSteps[0] = 0, the seed).
type Run struct {
	// N is the population size.
	N int
	// Sub is the sub-population size n' = |V'|.
	Sub int
	// InfectionSteps has length Sub; entry k is the step at which k+1
	// members were infected.
	InfectionSteps []uint64
}

// CompletionStep returns the step at which the whole sub-population was
// infected.
func (r Run) CompletionStep() uint64 {
	return r.InfectionSteps[len(r.InfectionSteps)-1]
}

// CompletionParallelTime returns CompletionStep divided by n.
func (r Run) CompletionParallelTime() float64 {
	return float64(r.CompletionStep()) / float64(r.N)
}

func validate(n, sub int) {
	if n < 2 {
		panic(fmt.Sprintf("epidemic: population size %d < 2", n))
	}
	if sub < 1 || sub > n {
		panic(fmt.Sprintf("epidemic: sub-population size %d outside [1, %d]", sub, n))
	}
}

// SimulatePairs runs the literal epidemic: V' is agents 0..sub−1, agent 0
// is the seed, and each step draws a uniform ordered pair of distinct
// agents. It is O(steps) and intended for cross-validation and small runs.
func SimulatePairs(n, sub int, r *rng.Source) Run {
	validate(n, sub)
	infected := make([]bool, n)
	infected[0] = true
	steps := make([]uint64, 1, sub)
	count := 1
	var step uint64
	for count < sub {
		step++
		i, j := r.Pair(n)
		// One-way epidemic in V': an agent in V' becomes infected when its
		// partner is infected. Both directions of the unordered pair count
		// (the formal definition uses γ_t ∩ V' with set semantics).
		if infected[i] && !infected[j] && j < sub {
			infected[j] = true
			count++
			steps = append(steps, step)
		} else if infected[j] && !infected[i] && i < sub {
			infected[i] = true
			count++
			steps = append(steps, step)
		}
	}
	return Run{N: n, Sub: sub, InfectionSteps: steps}
}

// SimulateJump runs the epidemic by sampling the geometric waiting time
// between infections: with k infected members the per-step infection
// probability is p_k = 2k(n'−k)/(n(n−1)). The returned Run has exactly the
// distribution of SimulatePairs but costs O(n') independent of n.
func SimulateJump(n, sub int, r *rng.Source) Run {
	validate(n, sub)
	steps := make([]uint64, 1, sub)
	pairs := float64(n) * float64(n-1)
	var step uint64
	for k := 1; k < sub; k++ {
		p := 2 * float64(k) * float64(sub-k) / pairs
		step += r.Geometric(p) + 1
		steps = append(steps, step)
	}
	return Run{N: n, Sub: sub, InfectionSteps: steps}
}

// Lemma2Bound returns the paper's tail bound n·e^{−t/n} on the probability
// that the epidemic in a sub-population of any size has not finished after
// 2⌈n/n'⌉·t interactions.
func Lemma2Bound(n int, t float64) float64 {
	return math.Min(1, float64(n)*math.Exp(-t/float64(n)))
}

// Lemma2Steps returns the interaction budget 2⌈n/n'⌉·t that Lemma2Bound
// refers to.
func Lemma2Steps(n, sub int, t float64) uint64 {
	ceil := (n + sub - 1) / sub
	return uint64(2 * float64(ceil) * t)
}

// CompletionTimes runs reps independent jump-simulated epidemics and
// returns their completion steps, for use by the Lemma 2 experiment.
func CompletionTimes(n, sub, reps int, seed uint64) []uint64 {
	r := rng.New(seed)
	out := make([]uint64, reps)
	for i := range out {
		out[i] = SimulateJump(n, sub, r.Split()).CompletionStep()
	}
	return out
}
