package epidemic_test

import (
	"fmt"
	"math"

	"popproto/internal/epidemic"
	"popproto/internal/rng"
)

// ExampleSimulateJump runs a one-way epidemic in a population of 4096 and
// relates its completion time to the Θ(n log n) expectation.
func ExampleSimulateJump() {
	const n = 4096
	run := epidemic.SimulateJump(n, n, rng.New(7))
	c := float64(run.CompletionStep()) / (float64(n) * math.Log(n))
	fmt.Println("monotone infection times:", sortedStrictly(run.InfectionSteps))
	fmt.Println("completion within [1,4]·n·ln n:", c > 1 && c < 4)

	// Output:
	// monotone infection times: true
	// completion within [1,4]·n·ln n: true
}

// ExampleLemma2Bound evaluates the paper's epidemic tail bound.
func ExampleLemma2Bound() {
	n := 1024
	t := 3 * float64(n) * math.Log(float64(n))
	fmt.Printf("bound at t = 3·n·ln n: %.6f\n", epidemic.Lemma2Bound(n, t))

	// Output:
	// bound at t = 3·n·ln n: 0.000001
}

func sortedStrictly(xs []uint64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}
