package epidemic

import "popproto/internal/pp"

// SIState is the agent state of the SI protocol: pristine, susceptible, or
// infected.
type SIState uint8

const (
	// Virgin marks an agent that has not interacted yet (the X status of
	// the paper's protocols); the population protocol model forces a
	// uniform initial state, so infection seeds are minted from the first
	// Virgin×Virgin interactions rather than planted at time zero.
	Virgin SIState = iota
	// Susceptible marks an initialized agent that has not heard the rumor.
	Susceptible
	// Infected marks an agent the epidemic has reached.
	Infected
)

// String implements fmt.Stringer; the values are the census keys the
// registry reports.
func (s SIState) String() string {
	switch s {
	case Virgin:
		return "V"
	case Susceptible:
		return "S"
	default:
		return "I"
	}
}

// SI is the one-way epidemic of Lemma 2 packaged as a pp.Protocol, so the
// registry and the simulation service can run the paper's workhorse
// sub-process as a standalone coverage workload on either engine.
//
// Every agent starts Virgin. An interaction of two Virgin agents mints an
// infection seed (initiator infected, responder susceptible); any other
// interaction first initializes Virgin participants to Susceptible and
// then spreads the infection one way: a susceptible participant becomes
// infected when its partner is infected. Because seeds are only minted
// while uninitialized pairs remain, the process behaves like the paper's
// epidemic with a handful of early sources and completes in Θ(log n)
// parallel time.
//
// The output function inverts the usual convention: agents the epidemic
// has NOT reached output Leader, so Leaders() counts the uncovered
// remainder and the run stabilizes — in the pp.Runner sense of
// RunUntilLeaders — when it hits the registry target of zero.
type SI struct{}

// Name implements pp.Protocol.
func (SI) Name() string { return "Epidemic-SI" }

// InitialState implements pp.Protocol.
func (SI) InitialState() SIState { return Virgin }

// Output implements pp.Protocol: uncovered agents (Virgin or Susceptible)
// output Leader, infected agents output Follower.
func (SI) Output(s SIState) pp.Role {
	if s == Infected {
		return pp.Follower
	}
	return pp.Leader
}

// Transition implements pp.Protocol.
func (SI) Transition(a, b SIState) (SIState, SIState) {
	if a == Virgin && b == Virgin {
		return Infected, Susceptible
	}
	if a == Virgin {
		a = Susceptible
	}
	if b == Virgin {
		b = Susceptible
	}
	// One-way epidemic: γ ∈ V' becomes infected when its partner is.
	if a == Infected || b == Infected {
		return Infected, Infected
	}
	return a, b
}
