// Engine-equivalence tests: the census engine (CountSimulator) must be
// statistically indistinguishable from the per-agent engine (Simulator) on
// identical protocols. Both engines realize the same Markov chain — the
// census engine by sampling state pairs with the multiplicity weights of
// the uniform scheduler and by exact geometric batching of
// census-preserving interactions — so their stabilization-time
// distributions agree. These tests certify that with the repository's own
// statistical machinery (KS and χ² from internal/stats).
//
// All seeds are fixed, so the tests are deterministic; under the null
// hypothesis (which holds by construction) the p-values are uniform, and
// the chosen seeds give comfortable margins over the 0.001 rejection level.
package popproto

import (
	"testing"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
	"popproto/internal/stats"
)

// stabilizationTimes collects the parallel stabilization times of reps
// independent elections on the given engine, failing the test if any run
// misses the budget.
func stabilizationTimes[S comparable](
	t *testing.T, engine pp.Engine, proto pp.Protocol[S], n, reps int, seed, budget uint64,
) []float64 {
	t.Helper()
	results := pp.MeasureWith(engine, proto, n, reps, seed, budget, 0)
	times := make([]float64, len(results))
	for i, r := range results {
		if !r.Stabilized {
			t.Fatalf("%s engine, rep %d: did not stabilize within %d steps",
				engine, i, budget)
		}
		times[i] = r.ParallelTime
	}
	return times
}

// ksAcross runs reps elections per engine (with distinct seed streams) and
// applies the two-sample Kolmogorov–Smirnov test to the resulting
// stabilization-time samples.
func ksAcross[S comparable](
	t *testing.T, proto pp.Protocol[S], n, reps int, budget uint64,
) stats.KS {
	t.Helper()
	agent := stabilizationTimes(t, pp.EngineAgent, proto, n, reps, 1, budget)
	count := stabilizationTimes(t, pp.EngineCount, proto, n, reps, 2, budget)
	return stats.KSTwoSample(agent, count)
}

// ksPairs KS-tests the batch engine's stabilization times against each of
// the other engines on the same protocol, failing t on any rejection.
func ksPairs[S comparable](
	t *testing.T, proto pp.Protocol[S], n, reps int, budget uint64,
) {
	t.Helper()
	batch := stabilizationTimes(t, pp.EngineBatch, proto, n, reps, 5, budget)
	for _, ref := range []pp.Engine{pp.EngineAgent, pp.EngineCount} {
		times := stabilizationTimes(t, ref, proto, n, reps, 1+uint64(ref), budget)
		ks := stats.KSTwoSample(batch, times)
		if ks.P < 0.001 {
			t.Errorf("batch vs %s stabilization times differ: D=%.4f p=%.6f",
				ref, ks.Stat, ks.P)
		}
	}
}

func TestEngineEquivalencePLL(t *testing.T) {
	n := 96
	ks := ksAcross[core.State](t, core.NewForN(n), n, 200, logBudget(n))
	if ks.P < 0.001 {
		t.Fatalf("PLL stabilization times distinguish the engines: D=%.4f p=%.6f", ks.Stat, ks.P)
	}
}

func TestEngineEquivalencePLLSymmetric(t *testing.T) {
	n := 64
	ks := ksAcross[core.SymState](t, core.NewSymmetricForN(n), n, 120, 40*logBudget(n))
	if ks.P < 0.001 {
		t.Fatalf("symmetric PLL stabilization times distinguish the engines: D=%.4f p=%.6f",
			ks.Stat, ks.P)
	}
}

func TestEngineEquivalenceAngluin(t *testing.T) {
	n := 64
	ks := ksAcross[baseline.AngluinState](t, baseline.Angluin{}, n, 200, linearBudget(n))
	if ks.P < 0.001 {
		t.Fatalf("Angluin stabilization times distinguish the engines: D=%.4f p=%.6f",
			ks.Stat, ks.P)
	}
}

// The batch engine must match both other engines on every fixture class:
// the two-state duel (heavy collision-free rounds), PLL (mixed rounds and
// per-interaction fallback) and Angluin (rounds early, geometric no-op
// skipping late).

func TestEngineEquivalenceBatchDuel(t *testing.T) {
	const n = 256
	ksPairs[bool](t, pptest.Duel{}, n, 200, linearBudget(n))
}

func TestEngineEquivalenceBatchPLL(t *testing.T) {
	const n = 96
	ksPairs[core.State](t, core.NewForN(n), n, 200, logBudget(n))
}

func TestEngineEquivalenceBatchAngluin(t *testing.T) {
	const n = 64
	ksPairs[baseline.AngluinState](t, baseline.Angluin{}, n, 200, linearBudget(n))
}

// TestEngineEquivalenceBatchChiSquare complements the KS tests with a
// two-sample χ² over pooled-quantile bins, batch vs agent, on the Angluin
// fixture.
func TestEngineEquivalenceBatchChiSquare(t *testing.T) {
	const (
		n    = 64
		reps = 240
		bins = 6
	)
	budget := linearBudget(n)
	agent := stabilizationTimes(t, pp.EngineAgent, baseline.Angluin{}, n, reps, 13, budget)
	batch := stabilizationTimes(t, pp.EngineBatch, baseline.Angluin{}, n, reps, 14, budget)

	pooled := append(append([]float64(nil), agent...), batch...)
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = stats.Quantile(pooled, float64(i+1)/bins)
	}
	binOf := func(v float64) int {
		b := 0
		for b < len(edges) && v > edges[b] {
			b++
		}
		return b
	}
	oa := make([]float64, bins)
	ob := make([]float64, bins)
	for i := range agent {
		oa[binOf(agent[i])]++
		ob[binOf(batch[i])]++
	}
	stat := 0.0
	for i := range oa {
		if oa[i]+ob[i] == 0 {
			continue
		}
		d := oa[i] - ob[i]
		stat += d * d / (oa[i] + ob[i])
	}
	p := stats.GammaQ(float64(bins-1)/2, stat/2)
	if p < 0.001 {
		t.Fatalf("batch-engine times distinguish the engines: χ²=%.2f p=%.5f (agent %v, batch %v)",
			stat, p, oa, ob)
	}
}

// TestEngineEquivalenceChiSquare bins the census engine's stabilization
// times at the quantiles of the per-agent sample: under equivalence the
// bin occupancies are uniform, which the χ² goodness-of-fit test checks.
func TestEngineEquivalenceChiSquare(t *testing.T) {
	const (
		n    = 64
		reps = 240
		bins = 6
	)
	budget := linearBudget(n)
	agent := stabilizationTimes(t, pp.EngineAgent, baseline.Angluin{}, n, reps, 3, budget)
	count := stabilizationTimes(t, pp.EngineCount, baseline.Angluin{}, n, reps, 4, budget)

	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = stats.Quantile(agent, float64(i+1)/bins)
	}
	observed := make([]float64, bins)
	for _, v := range count {
		b := 0
		for b < len(edges) && v > edges[b] {
			b++
		}
		observed[b]++
	}
	gof := stats.ChiSquareUniform(observed)
	if gof.P < 0.001 {
		t.Fatalf("census-engine times are not uniform over agent-engine quantile bins: %v "+
			"(occupancies %v)", gof, observed)
	}
}

// TestLeaderCountMonotone: for every protocol in this repository the leader
// count is monotone non-increasing and never reaches zero — on both
// engines, including through the census engine's batched skips.
func TestLeaderCountMonotone(t *testing.T) {
	checkMonotone := func(t *testing.T, sim pp.Runner[core.State], chunk, budget uint64) {
		t.Helper()
		prev := sim.Leaders()
		for sim.Steps() < budget {
			sim.RunSteps(chunk)
			l := sim.Leaders()
			if l > prev {
				t.Fatalf("leader count increased %d -> %d at step %d", prev, l, sim.Steps())
			}
			if l < 1 {
				t.Fatalf("all leaders eliminated at step %d", sim.Steps())
			}
			prev = l
		}
	}
	for _, engine := range pp.Engines() {
		t.Run("pll/"+engine.String(), func(t *testing.T) {
			const n = 256
			sim := pp.NewRunner[core.State](engine, core.NewForN(n), n, 7)
			checkMonotone(t, sim, n, uint64(60*n))
		})
		t.Run("duel/"+engine.String(), func(t *testing.T) {
			const n = 512
			sim := pp.NewRunner[bool](engine, pptest.Duel{}, n, 9)
			prev := sim.Leaders()
			budget := uint64(n) * uint64(n) * 4
			for sim.Steps() < budget && sim.Leaders() > 1 {
				sim.RunSteps(uint64(n))
				if l := sim.Leaders(); l > prev || l < 1 {
					t.Fatalf("leader census corrupt: %d -> %d at step %d", prev, l, sim.Steps())
				}
				prev = sim.Leaders()
			}
		})
	}
}
