// Engine-equivalence tests: every simulation engine — census, batch,
// hybrid — must be statistically indistinguishable from the per-agent
// reference engine on identical protocols. All engines realize the same
// uniform-scheduler Markov chain (the census engine by multiplicity-
// weighted pair sampling and exact geometric batching, the batch engine by
// collision-free rounds, the hybrid engine by handing the census between
// those modes), so their stabilization-time distributions agree. The
// parameterized suite in pptest certifies that with the repository's own
// statistical machinery (KS and χ² from internal/stats); adding a future
// engine to the full suite is one entry in pp.Engines.
//
// All seeds are fixed, so the tests are deterministic; under the null
// hypothesis (which holds by construction) the p-values are uniform, and
// the chosen seeds give comfortable margins over the 0.001 rejection level.
package popproto

import (
	"testing"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

// equivalenceFixtures is the protocol battery of the cross-engine suite:
// the two-state duel (heavy collision-free rounds), PLL (mixed rounds and
// per-interaction fallback), symmetric PLL (coin-flip symmetry breaking)
// and Angluin (rounds early, geometric no-op skipping late) cover every
// execution path of every engine.
func equivalenceFixtures() []pptest.EquivalenceFixture {
	return []pptest.EquivalenceFixture{
		pptest.EquivFixture[bool]("duel/n=256", pptest.Duel{}, 256, 200, linearBudget(256)),
		pptest.EquivFixture[core.State]("pll/n=96", core.NewForN(96), 96, 200, logBudget(96)),
		pptest.EquivFixture[core.SymState]("pll-sym/n=64", core.NewSymmetricForN(64), 64, 120,
			40*logBudget(64)),
		pptest.EquivFixture[baseline.AngluinState]("angluin/n=64", baseline.Angluin{}, 64, 200,
			linearBudget(64)),
	}
}

// TestEngineEquivalence runs the full KS/χ² suite for every engine against
// the per-agent reference on every fixture.
func TestEngineEquivalence(t *testing.T) {
	pptest.Equivalence(t, equivalenceFixtures(), pp.Engines())
}

// TestLeaderCountMonotone: for every protocol in this repository the leader
// count is monotone non-increasing and never reaches zero — on every
// engine, including through the census engine's batched skips and the
// round engines' aggregate paths.
func TestLeaderCountMonotone(t *testing.T) {
	checkMonotone := func(t *testing.T, sim pp.Runner[core.State], chunk, budget uint64) {
		t.Helper()
		prev := sim.Leaders()
		for sim.Steps() < budget {
			sim.RunSteps(chunk)
			l := sim.Leaders()
			if l > prev {
				t.Fatalf("leader count increased %d -> %d at step %d", prev, l, sim.Steps())
			}
			if l < 1 {
				t.Fatalf("all leaders eliminated at step %d", sim.Steps())
			}
			prev = l
		}
	}
	for _, engine := range pp.Engines() {
		t.Run("pll/"+engine.String(), func(t *testing.T) {
			const n = 256
			sim := pp.NewRunner[core.State](engine, core.NewForN(n), n, 7)
			checkMonotone(t, sim, n, uint64(60*n))
		})
		t.Run("duel/"+engine.String(), func(t *testing.T) {
			const n = 512
			sim := pp.NewRunner[bool](engine, pptest.Duel{}, n, 9)
			prev := sim.Leaders()
			budget := uint64(n) * uint64(n) * 4
			for sim.Steps() < budget && sim.Leaders() > 1 {
				sim.RunSteps(uint64(n))
				if l := sim.Leaders(); l > prev || l < 1 {
					t.Fatalf("leader census corrupt: %d -> %d at step %d", prev, l, sim.Steps())
				}
				prev = sim.Leaders()
			}
		})
	}
}
