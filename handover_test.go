// Forced-handover tests: the hybrid engine's mode controller is a pure
// cost model, so ANY deterministic handover policy must preserve the
// sampled distribution — including policies chosen adversarially to pin
// handover at the worst points (mid collision-free block, one interaction
// before the typical leader crossing, at a dead-census boundary). These
// tests pin such policies through TuneHandover and certify the resulting
// stabilization-time distributions against the per-agent reference engine
// with the same KS/χ² machinery as the engine-equivalence suite, plus a
// bit-determinism test (same seed ⇒ identical trajectory, across runs and
// after Clone).
package popproto

import (
	"testing"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

// forceCycle returns a handover policy that rotates round → skip →
// interact every `chunk` interactions, regardless of payoff. Driving runs
// through it exercises every mode transition hundreds of times per
// election, including handovers where the step budget truncates a
// collision-free block mid-round.
func forceCycle(chunk uint64) func(pp.HybridStats) pp.HybridMode {
	modes := [...]pp.HybridMode{pp.ModeRound, pp.ModeSkip, pp.ModeInteract}
	return func(st pp.HybridStats) pp.HybridMode {
		return modes[(st.Steps/chunk)%3]
	}
}

// pinCycle installs forceCycle on hybrid simulators (and forces round
// eligibility down to tiny populations); other engines pass through
// unconfigured, so the same fixture serves the agent reference.
func pinCycle[S comparable](chunk uint64) func(sim pp.Runner[S], seed uint64) {
	return func(sim pp.Runner[S], _ uint64) {
		h, ok := sim.(*pp.HybridSimulator[S])
		if !ok {
			return
		}
		h.TuneRounds(2, 1<<30)
		h.TuneHandover(forceCycle(chunk))
	}
}

// TestHandoverMidRound: a policy that rotates modes on raw step-count
// thresholds hands the census over at arbitrary chain positions — in
// particular mid collision-free block, where the round machinery must
// defer the rest of the block exactly. The stabilization-time
// distributions must still match the per-agent engine on every fixture
// class.
func TestHandoverMidRound(t *testing.T) {
	fixtures := []pptest.EquivalenceFixture{
		pptest.EquivFixtureConfigured[bool]("duel/n=256", pptest.Duel{}, 256, 200,
			linearBudget(256), pinCycle[bool](37)),
		pptest.EquivFixtureConfigured[core.State]("pll/n=96", core.NewForN(96), 96, 200,
			logBudget(96), pinCycle[core.State](53)),
		pptest.EquivFixtureConfigured[baseline.AngluinState]("angluin/n=64", baseline.Angluin{},
			64, 200, linearBudget(64), pinCycle[baseline.AngluinState](29)),
	}
	pptest.Equivalence(t, fixtures, []pp.Engine{pp.EngineAgent, pp.EngineHybrid})
}

// crossingFixture builds a fixture that pins handover one interaction
// before the leader crossing: for every replicate, a per-agent pilot run
// with the same seed locates its stabilization step c; the hybrid run is
// then driven in forced-round mode up to step c−1 (truncating whatever
// collision-free block is open at exactly that boundary) and handed to
// per-interaction mode for the crossing itself. The pilot's c is a
// constant with respect to the measured run, so the policy is
// deterministic and the first-hit distribution must be preserved.
func crossingFixture[S comparable](
	name string, proto pp.Protocol[S], n, reps int, budget uint64,
) pptest.EquivalenceFixture {
	inner := pptest.EquivFixtureConfigured[S](name, proto, n, reps, budget, nil)
	times := inner.Times
	return pptest.EquivalenceFixture{
		Name: name,
		Times: func(t *testing.T, engine pp.Engine, seed uint64) []float64 {
			t.Helper()
			if engine != pp.EngineHybrid {
				return times(t, engine, seed)
			}
			out := make([]float64, reps)
			failed := make([]bool, reps)
			pp.Parallel(reps, 0, seed, func(rep int, repSeed uint64) {
				pilot := pp.NewRunner(pp.EngineAgent, proto, n, repSeed)
				c, piloted := pilot.RunUntilLeaders(1, budget)
				h := pp.NewHybridSimulator(proto, n, repSeed)
				h.TuneRounds(2, 1<<30)
				h.TuneHandover(func(pp.HybridStats) pp.HybridMode { return pp.ModeRound })
				var steps uint64
				ok := true
				if piloted && c > 0 {
					steps, ok = h.RunUntilLeaders(1, c-1)
				}
				if !ok || h.Leaders() > 1 {
					// Not crossed by c−1: hand over right before the pilot's
					// crossing and finish per-interaction.
					h.TuneHandover(func(pp.HybridStats) pp.HybridMode { return pp.ModeInteract })
					steps, ok = h.RunUntilLeaders(1, budget)
				}
				out[rep] = float64(steps) / float64(n)
				failed[rep] = !ok
			})
			for rep, f := range failed {
				if f {
					t.Fatalf("%s: hybrid rep %d: did not stabilize within %d steps", name, rep, budget)
				}
			}
			return out
		},
	}
}

// TestHandoverBeforeLeaderCrossing certifies the crossing-pinned handover
// against the per-agent reference on duel and PLL.
func TestHandoverBeforeLeaderCrossing(t *testing.T) {
	fixtures := []pptest.EquivalenceFixture{
		crossingFixture[bool]("duel/n=128", pptest.Duel{}, 128, 200, linearBudget(128)),
		crossingFixture[core.State]("pll/n=64", core.NewForN(64), 64, 200, logBudget(64)),
	}
	pptest.Equivalence(t, fixtures, []pp.Engine{pp.EngineAgent, pp.EngineHybrid})
}

// TestHandoverDeadCensus drives the hybrid engine across the dead-census
// boundary: once no pair of live states reacts, the geometric skipper must
// spend arbitrarily large step budgets exactly, the census must stay
// frozen, and handover policies that keep requesting other modes must
// still account steps exactly.
func TestHandoverDeadCensus(t *testing.T) {
	t.Run("frozen", func(t *testing.T) {
		const n = 1000
		h := pp.NewHybridSimulator[int](pptest.Frozen{}, n, 11)
		const budget = uint64(1) << 50
		h.RunSteps(budget)
		if got := h.Steps(); got != budget {
			t.Fatalf("dead census step accounting: got %d steps, want %d", got, budget)
		}
		if h.LiveStates() != 1 || h.RoleChanges() != 0 {
			t.Fatalf("dead census mutated: live=%d roleChanges=%d", h.LiveStates(), h.RoleChanges())
		}
	})
	t.Run("duel-endgame", func(t *testing.T) {
		// Elect one duel leader, then cross into the dead census: the only
		// reactive pair L×L is gone, so huge budgets must be spent at once
		// and stability verified without role changes.
		const n = 512
		h := pp.NewHybridSimulator[bool](pptest.Duel{}, n, 13)
		if _, ok := h.RunUntilLeaders(1, linearBudget(n)); !ok {
			t.Fatal("duel did not elect within budget")
		}
		crossing := h.Steps()
		if !h.VerifyStable(uint64(n) * uint64(n) * 1000) {
			t.Fatal("stable duel census reported role changes")
		}
		if want := crossing + uint64(n)*uint64(n)*1000; h.Steps() != want {
			t.Fatalf("dead-census step accounting after election: got %d, want %d", h.Steps(), want)
		}
		// A policy that keeps requesting rounds on the dead census must
		// still make progress (all-no-op rounds) with exact accounting.
		h.TuneHandover(func(pp.HybridStats) pp.HybridMode { return pp.ModeRound })
		before := h.Steps()
		h.RunSteps(10 * uint64(n))
		if got := h.Steps(); got != before+10*uint64(n) {
			t.Fatalf("forced-round dead census accounting: got %d, want %d", got, before+10*uint64(n))
		}
		if h.Leaders() != 1 {
			t.Fatalf("dead census changed leaders: %d", h.Leaders())
		}
	})
}

// TestHybridHandoverDeterminism: the controller conditions only on chain
// history, so a fixed seed must reproduce the trajectory bit-for-bit —
// across independent runs and across Clone, including clones taken between
// arbitrary mode transitions.
func TestHybridHandoverDeterminism(t *testing.T) {
	const n = 4096
	const seed = 42
	proto := core.NewForN(n)
	mk := func() *pp.HybridSimulator[core.State] {
		return pp.NewHybridSimulator[core.State](proto, n, seed)
	}
	a, b := mk(), mk()
	var clone *pp.HybridSimulator[core.State]
	chunk := uint64(n / 2)
	for i := 0; i < 200; i++ {
		a.RunSteps(chunk)
		b.RunSteps(chunk)
		if a.Steps() != b.Steps() || a.Leaders() != b.Leaders() ||
			a.RoleChanges() != b.RoleChanges() || a.Mode() != b.Mode() {
			t.Fatalf("same-seed runs diverged at step %d: steps %d/%d leaders %d/%d "+
				"roleChanges %d/%d mode %s/%s", a.Steps(), a.Steps(), b.Steps(),
				a.Leaders(), b.Leaders(), a.RoleChanges(), b.RoleChanges(), a.Mode(), b.Mode())
		}
		if i == 99 { // after 100 chunks; 100 more below rejoin a's 200
			clone = a.Clone()
		}
	}
	// The clone must reproduce the original's future exactly from the
	// cloned scheduler position and controller state.
	c2 := a.Clone()
	for i := 0; i < 100; i++ {
		clone.RunSteps(chunk)
	}
	if clone.Steps() != a.Steps() || clone.Leaders() != a.Leaders() ||
		clone.RoleChanges() != a.RoleChanges() {
		t.Fatalf("mid-run clone diverged: steps %d vs %d, leaders %d vs %d, roleChanges %d vs %d",
			clone.Steps(), a.Steps(), clone.Leaders(), a.Leaders(),
			clone.RoleChanges(), a.RoleChanges())
	}
	for i := 0; i < 50; i++ {
		a.RunSteps(chunk)
		c2.RunSteps(chunk)
		if a.Steps() != c2.Steps() || a.Leaders() != c2.Leaders() ||
			a.RoleChanges() != c2.RoleChanges() || a.Mode() != c2.Mode() {
			t.Fatalf("clone future diverged at step %d (mode %s vs %s)", a.Steps(), a.Mode(), c2.Mode())
		}
	}
}
