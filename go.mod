module popproto

go 1.22
