package main

import (
	"strings"
	"testing"

	"popproto/internal/pp"
)

func TestRunAllProtocols(t *testing.T) {
	// Derived from pp.Engines so this sweep picks up new engines on its
	// own, like the flag usage text does.
	for _, engine := range pp.EngineNames() {
		for _, proto := range []string{"pll", "pll-sym", "angluin", "lottery", "maxid", "epidemic"} {
			args := []string{"-protocol", proto, "-engine", engine,
				"-n", "64", "-seed", "3", "-verify", "2000"}
			if err := run(args); err != nil {
				t.Errorf("%s/%s: %v", proto, engine, err)
			}
		}
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	if err := run([]string{"-engine", "quantum", "-n", "8"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunWithTraceAndChart(t *testing.T) {
	if err := run([]string{"-protocol", "pll", "-n", "64", "-trace", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "pll", "-n", "64", "-chart"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitM(t *testing.T) {
	if err := run([]string{"-protocol", "pll", "-n", "64", "-m", "10"}); err != nil {
		t.Fatal(err)
	}
	// m below lg n is rejected by NewParamsWithM.
	err := run([]string{"-protocol", "pll", "-n", "1024", "-m", "5"})
	if err == nil || !strings.Contains(err.Error(), "m ≥ log₂ n") {
		t.Fatalf("undersized m accepted: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-protocol", "nope", "-n", "8"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestListProtocols(t *testing.T) {
	var buf strings.Builder
	printCatalog(&buf)
	out := buf.String()
	for _, key := range []string{"pll", "pll-sym", "angluin", "lottery", "maxid", "epidemic"} {
		if !strings.Contains(out, key) {
			t.Errorf("catalog listing is missing %q:\n%s", key, out)
		}
	}
	if !strings.Contains(out, "-m:") {
		t.Errorf("catalog listing does not document the m parameter:\n%s", out)
	}
	// The flag itself must succeed without running anything.
	if err := run([]string{"-list-protocols"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// An absurdly small budget cannot elect among 512 agents.
	err := run([]string{"-protocol", "angluin", "-n", "512", "-max-parallel", "0.05"})
	if err == nil || !strings.Contains(err.Error(), "no stabilization") {
		t.Fatalf("want stabilization failure, got %v", err)
	}
}

// TestCatalogListsEngines: -list-protocols must name the suitable engines
// for every entry, so users can pick without reading source.
func TestCatalogListsEngines(t *testing.T) {
	var buf strings.Builder
	printCatalog(&buf)
	if !strings.Contains(buf.String(), "engines (best first): hybrid, batch, count, agent") {
		t.Fatalf("catalog does not list engine suitability:\n%s", buf.String())
	}
}

// TestRunEnsemble: the -replicates path runs a multi-replicate ensemble
// and succeeds when every replicate elects.
func TestRunEnsemble(t *testing.T) {
	args := []string{"-protocol", "pll", "-engine", "count", "-n", "512",
		"-seed", "3", "-replicates", "6", "-workers", "2"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	// With -chart the survival curve renders instead of the trajectory.
	if err := run(append(args, "-chart")); err != nil {
		t.Fatal(err)
	}
	// Early stopping with a loose target still succeeds.
	if err := run([]string{"-protocol", "pll", "-engine", "count", "-n", "512",
		"-replicates", "40", "-ci", "0.9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnsembleRejectsBadSpec(t *testing.T) {
	if err := run([]string{"-protocol", "nope", "-n", "64", "-replicates", "4"}); err == nil {
		t.Fatal("unknown protocol accepted on the ensemble path")
	}
	// -ci on a single run can never engage: reject rather than print a
	// meaningless ±0 interval.
	if err := run([]string{"-protocol", "pll", "-n", "64", "-ci", "0.1"}); err == nil ||
		!strings.Contains(err.Error(), "-replicates") {
		t.Fatalf("-ci without -replicates accepted: %v", err)
	}
	if err := run([]string{"-protocol", "pll", "-n", "64", "-replicates", "4", "-ci", "1.5"}); err == nil {
		t.Fatal("-ci >= 1 accepted")
	}
}
