// Command leaderelect runs a single leader election and reports its
// progress and outcome. It exposes every protocol in the repository: the
// paper's PLL (asymmetric and symmetric) and the Table 1 baselines.
//
// Usage:
//
//	leaderelect -protocol pll -n 100000 -seed 7 -trace 5
//	leaderelect -protocol pll -engine count -n 100000000 -seed 7
//
// The -engine flag selects the simulation engine: "agent" keeps one state
// per agent; "count" keeps only the census (state multiplicities), which is
// what makes populations of 10^7-10^8 agents practical.
//
// With -trace k the leader count is printed every k units of parallel
// time until stabilization.
package main

import (
	"flag"
	"fmt"
	"os"

	"popproto/internal/asciichart"
	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaderelect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaderelect", flag.ContinueOnError)
	protocol := fs.String("protocol", "pll", "pll | pll-sym | angluin | lottery | maxid")
	engineName := fs.String("engine", "agent", "simulation engine: agent | count (census-based, for large n)")
	n := fs.Int("n", 10000, "population size")
	seed := fs.Uint64("seed", 1, "scheduler seed")
	m := fs.Int("m", 0, "knowledge parameter m for PLL (0 = ⌈lg n⌉)")
	budget := fs.Float64("max-parallel", 1e6, "give up after this much parallel time")
	traceEvery := fs.Float64("trace", 0, "print the leader count every this many parallel time units (0 = off)")
	chart := fs.Bool("chart", false, "render an ASCII chart of the leader count trajectory")
	verify := fs.Uint64("verify", 0, "extra interactions to verify stability after election")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("population size %d < 1", *n)
	}
	engine, err := pp.ParseEngine(*engineName)
	if err != nil {
		return err
	}

	maxSteps := uint64(*budget * float64(*n))
	switch *protocol {
	case "pll":
		params, err := pllParams(*n, *m)
		if err != nil {
			return err
		}
		fmt.Printf("PLL with n=%d m=%d (lmax=%d cmax=%d Φ=%d), %d states/agent\n",
			*n, params.M, params.LMax, params.CMax, params.Phi, params.StateSpaceSize())
		return elect[core.State](engine, core.New(params), *n, *seed, maxSteps, *traceEvery, *chart, *verify)
	case "pll-sym":
		params, err := pllParams(*n, *m)
		if err != nil {
			return err
		}
		fmt.Printf("symmetric PLL with n=%d m=%d\n", *n, params.M)
		return elect[core.SymState](engine, core.NewSymmetric(params), *n, *seed, maxSteps, *traceEvery, *chart, *verify)
	case "angluin":
		return elect[baseline.AngluinState](engine, baseline.Angluin{}, *n, *seed, maxSteps, *traceEvery, *chart, *verify)
	case "lottery":
		return elect[baseline.LotteryState](engine, baseline.NewLottery(*n), *n, *seed, maxSteps, *traceEvery, *chart, *verify)
	case "maxid":
		return elect[baseline.MaxIDState](engine, baseline.NewMaxID(*n), *n, *seed, maxSteps, *traceEvery, *chart, *verify)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
}

func pllParams(n, m int) (core.Params, error) {
	if m == 0 {
		return core.NewParams(n), nil
	}
	return core.NewParamsWithM(n, m)
}

func elect[S comparable](engine pp.Engine, proto pp.Protocol[S], n int, seed, maxSteps uint64, traceEvery float64, chart bool, verify uint64) error {
	sim := pp.NewRunner[S](engine, proto, n, seed)
	fmt.Printf("protocol %s, %d agents, seed %d, %s engine\n", proto.Name(), n, seed, engine)

	switch {
	case chart:
		rec := trace.NewRecorder(sim, 1.0, trace.LeaderProbe[S]())
		rec.RunUntil(float64(maxSteps)/float64(n), func(s pp.Runner[S]) bool {
			return s.Leaders() <= 1
		})
		fmt.Print(rec.Chart(asciichart.Options{Width: 64, Height: 14, YLabel: "leaders"}))
	case traceEvery > 0:
		chunk := uint64(traceEvery * float64(n))
		if chunk == 0 {
			chunk = 1
		}
		for sim.Leaders() > 1 && sim.Steps() < maxSteps {
			sim.RunSteps(chunk)
			fmt.Printf("t = %8.1f  leaders = %d\n", sim.ParallelTime(), sim.Leaders())
		}
	default:
		sim.RunUntilLeaders(1, maxSteps)
	}

	if sim.Leaders() != 1 {
		return fmt.Errorf("no stabilization within %d steps (%d leaders remain)",
			maxSteps, sim.Leaders())
	}
	if engine == pp.EngineAgent {
		// Only the per-agent engine has real agent identities; the census
		// engine's ids are synthetic, and scanning 10⁸ agents to print one
		// would dwarf the election itself.
		leaderID := -1
		sim.ForEach(func(id int, s S) {
			if proto.Output(s) == pp.Leader {
				leaderID = id
			}
		})
		fmt.Printf("elected agent %d after %.2f parallel time (%d interactions)\n",
			leaderID, sim.ParallelTime(), sim.Steps())
	} else {
		fmt.Printf("elected a unique leader after %.2f parallel time (%d interactions, %d live states)\n",
			sim.ParallelTime(), sim.Steps(), len(sim.Census()))
	}

	if verify > 0 {
		if sim.VerifyStable(verify) {
			fmt.Printf("stable: no output changed over %d further interactions\n", verify)
		} else {
			return fmt.Errorf("output changed during the %d-interaction stability check", verify)
		}
	}
	return nil
}
