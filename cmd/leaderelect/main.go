// Command leaderelect runs a single leader election and reports its
// progress and outcome. It exposes every protocol in the registry: the
// paper's PLL (asymmetric and symmetric), the Table 1 baselines, and the
// epidemic coverage workload.
//
// Usage:
//
//	leaderelect -list-protocols
//	leaderelect -protocol pll -n 100000 -seed 7 -trace 5
//	leaderelect -protocol pll -engine count -n 100000000 -seed 7
//	leaderelect -protocol pll -engine count -n 100000 -replicates 50
//
// The -engine flag selects the simulation engine: "agent" keeps one state
// per agent; "count" keeps only the census (state multiplicities), which is
// what makes populations of 10^7-10^8 agents practical; "batch" adds
// collision-free rounds on top of the census; "hybrid" monitors the census
// and hands over between batch rounds, per-interaction sampling and
// geometric no-op skipping as the payoff flips; "auto" resolves to the
// registry's recommendation for the protocol and population size.
//
// With -trace k the leader count is printed every k units of parallel
// time until stabilization.
//
// With -replicates R > 1 the command runs a multi-core Monte-Carlo
// ensemble instead of a single election and reports the aggregate
// statistics — mean stabilization time with a 95% CI, p50/p90/p99, the
// survival curve (with -chart) — optionally stopping early once the CI
// is tight enough (-ci).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/cliflags"
	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaderelect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaderelect", flag.ContinueOnError)
	// The shared flags (engine, protocol, replicates, ci, workers) are
	// registered through internal/cliflags so their spellings, catalogs
	// and validation stay identical across leaderelect, experiments and
	// sweep.
	protocol := cliflags.Protocol(fs, "pll")
	engineName := cliflags.Engine(fs, "agent", "simulation engine")
	list := fs.Bool("list-protocols", false, "print the protocol catalog with parameter docs and exit")
	n := fs.Int("n", 10000, "population size")
	seed := cliflags.Seed(fs, 1, "scheduler seed")
	m := fs.Int("m", 0, "knowledge parameter m for the PLL variants (0 = ⌈lg n⌉)")
	budget := fs.Float64("max-parallel", 1e6, "give up after this much parallel time")
	traceEvery := fs.Float64("trace", 0, "print the leader count every this many parallel time units (0 = off)")
	chart := fs.Bool("chart", false, "render an ASCII chart of the leader count trajectory (with -replicates: the survival curve)")
	verify := fs.Uint64("verify", 0, "extra interactions to verify stability after election")
	replicates := cliflags.Replicates(fs, 1, "run a Monte-Carlo ensemble of this many elections and report aggregate statistics")
	ciTarget := cliflags.CI(fs)
	workers := cliflags.Workers(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		// The catalog is the command's output, not diagnostics: stdout,
		// so it can be piped and grepped.
		printCatalog(os.Stdout)
		return nil
	}
	engine, err := pp.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	if engine == pp.EngineAuto {
		resolved, err := registry.ResolveEngine(registry.Spec{Protocol: *protocol, N: *n, Engine: engine})
		if err != nil {
			return err
		}
		engine = resolved.Engine
	}
	if err := cliflags.CheckCI(*ciTarget); err != nil {
		return err
	}
	if *ciTarget > 0 && *replicates < 2 {
		// A 1-replicate "ensemble" can never evaluate a CI target; demand
		// the flag combination that can.
		return fmt.Errorf("-ci needs -replicates > 1 (got %d)", *replicates)
	}
	if *replicates > 1 {
		return electEnsemble(registry.Spec{
			Protocol: *protocol, N: *n, Engine: engine, Seed: *seed, M: *m,
		}, *replicates, *ciTarget, uint64(*budget*float64(*n)), *workers, *chart)
	}

	el, err := registry.New(registry.Spec{
		Protocol: *protocol,
		N:        *n,
		Engine:   engine,
		Seed:     *seed,
		M:        *m,
	})
	if err != nil {
		return err
	}
	fmt.Println(el.Description())
	fmt.Printf("%d agents, seed %d, %s engine\n", el.N(), *seed, engine)
	maxSteps := uint64(*budget * float64(*n))
	return elect(el, engine, maxSteps, *traceEvery, *chart, *verify)
}

// electEnsemble runs a Monte-Carlo ensemble of the spec and prints the
// aggregate statistics the single-run path cannot give: mean parallel
// stabilization time with a 95% confidence interval, tail quantiles, and
// (with -chart) the empirical survival curve.
func electEnsemble(spec registry.Spec, replicates int, ciTarget float64, maxSteps uint64, workers int, chart bool) error {
	if _, err := registry.Validate(spec); err != nil {
		return err
	}
	fmt.Printf("ensemble: %s n=%d engine=%s, %d replicates", spec.Protocol, spec.N, spec.Engine, replicates)
	if ciTarget > 0 {
		fmt.Printf(" (early stop at ±%.0f%% CI)", ciTarget*100)
	}
	fmt.Println()

	// Progress: a line every ~10% of the requested replicates.
	every := max(replicates/10, 1)
	res, err := ensemble.Run(context.Background(), ensemble.Spec{
		Registry:   spec,
		Replicates: replicates,
		Budget:     maxSteps,
		CITarget:   ciTarget,
	}, ensemble.Options{
		Workers: workers,
		OnUpdate: func(agg ensemble.Aggregates) {
			if agg.Replicates%every == 0 || agg.Replicates == replicates {
				fmt.Printf("  %4d/%d  mean t = %.2f ±%.2f  p50 %.2f  p90 %.2f\n",
					agg.Replicates, replicates, agg.MeanParallelTime,
					(agg.CIHi-agg.CILo)/2, agg.P50, agg.P90)
			}
		},
	})
	if err != nil {
		return err
	}
	agg := res.Aggregates
	fmt.Println()
	if agg.EarlyStopped {
		fmt.Printf("early stop: CI target reached after %d of %d replicates\n",
			agg.Replicates, agg.Requested)
	}
	fmt.Printf("replicates   %d (base seed %d)\n", agg.Replicates, res.Spec.Registry.Seed)
	fmt.Printf("stabilized   %d/%d (95%% CI for p: [%.3f, %.3f])\n",
		agg.Stabilized, agg.Replicates, agg.StabilizedLo, agg.StabilizedHi)
	fmt.Printf("mean time    %.3f ± %.3f parallel time (95%% CI [%.3f, %.3f], sd %.3f)\n",
		agg.MeanParallelTime, (agg.CIHi-agg.CILo)/2, agg.CILo, agg.CIHi, agg.StdParallelTime)
	fmt.Printf("quantiles    p50 %.3f   p90 %.3f   p99 %.3f   range [%.3f, %.3f]\n",
		agg.P50, agg.P90, agg.P99, agg.MinParallelTime, agg.MaxParallelTime)
	fmt.Printf("mean steps   %.0f\n", agg.MeanSteps)
	if chart && len(agg.Survival) > 0 {
		xs := make([]float64, len(agg.Survival))
		ys := make([]float64, len(agg.Survival))
		for i, p := range agg.Survival {
			xs[i] = p.T
			ys[i] = p.Frac
		}
		fmt.Print(asciichart.Plot(
			[]asciichart.Series{{Name: "fraction of runs still electing", X: xs, Y: ys}},
			asciichart.Options{Width: 64, Height: 12, XLabel: "parallel time", YLabel: "surviving"},
		))
	}
	if agg.Stabilized < agg.Replicates {
		return fmt.Errorf("%d of %d replicates did not stabilize within %d steps",
			agg.Replicates-agg.Stabilized, agg.Replicates, maxSteps)
	}
	return nil
}

// printCatalog writes the registry with parameter docs, one protocol per
// block.
func printCatalog(w io.Writer) {
	for _, e := range registry.Entries() {
		fmt.Fprintf(w, "%-10s %s\n", e.Key, e.Summary)
		fmt.Fprintf(w, "           states %s, expected time %s, stabilizes at %d leader(s)\n",
			e.States, e.Time, e.Target)
		engines := make([]string, 0, 3)
		for _, eng := range e.SuitableEngines() {
			engines = append(engines, eng.String())
		}
		fmt.Fprintf(w, "           engines (best first): %s\n", strings.Join(engines, ", "))
		for _, p := range e.Params {
			fmt.Fprintf(w, "           -%s: %s\n", p.Name, p.Doc)
		}
	}
	fmt.Fprintf(w, "\n-engine %s resolves to the best engine per protocol and population size\n",
		pp.EngineAuto)
}

func elect(el registry.Election, engine pp.Engine, maxSteps uint64, traceEvery float64, chart bool, verify uint64) error {
	n := el.N()
	target := el.Target()

	switch {
	case chart:
		// Sample the leader count once per unit of parallel time.
		var xs, ys []float64
		sample := func() {
			xs = append(xs, el.ParallelTime())
			ys = append(ys, float64(el.Leaders()))
		}
		for sample(); el.Leaders() > target && el.Steps() < maxSteps; sample() {
			el.RunUntilLeaders(target, min(el.Steps()+uint64(n), maxSteps))
		}
		fmt.Print(asciichart.Plot(
			[]asciichart.Series{{Name: "leaders", X: xs, Y: ys}},
			asciichart.Options{Width: 64, Height: 14, XLabel: "parallel time", YLabel: "leaders"},
		))
	case traceEvery > 0:
		chunk := max(uint64(traceEvery*float64(n)), 1)
		for el.Leaders() > target && el.Steps() < maxSteps {
			el.RunUntilLeaders(target, min(el.Steps()+chunk, maxSteps))
			fmt.Printf("t = %8.1f  leaders = %d\n", el.ParallelTime(), el.Leaders())
		}
	default:
		el.RunUntilLeaders(target, maxSteps)
	}

	if el.Leaders() != target {
		return fmt.Errorf("no stabilization within %d steps (%d leaders remain, want %d)",
			maxSteps, el.Leaders(), target)
	}
	switch {
	case engine == pp.EngineAgent && target == 1:
		// Only the per-agent engine has real agent identities; the census
		// engine's ids are synthetic, and scanning 10⁸ agents to print one
		// would dwarf the election itself.
		fmt.Printf("elected agent %d after %.2f parallel time (%d interactions)\n",
			el.LeaderID(), el.ParallelTime(), el.Steps())
	case target == 1:
		fmt.Printf("elected a unique leader after %.2f parallel time (%d interactions, %d live states)\n",
			el.ParallelTime(), el.Steps(), el.LiveStates())
	default:
		fmt.Printf("stabilized at %d leaders after %.2f parallel time (%d interactions)\n",
			target, el.ParallelTime(), el.Steps())
	}

	if verify > 0 {
		if el.VerifyStable(verify) {
			fmt.Printf("stable: no output changed over %d further interactions\n", verify)
		} else {
			return fmt.Errorf("output changed during the %d-interaction stability check", verify)
		}
	}
	return nil
}
