package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeSmoke boots the real server on an ephemeral port, runs a tiny
// election through the HTTP API, and shuts down gracefully.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	}

	resp, err := http.Get(base + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"pll"`) {
		t.Fatalf("GET /v1/protocols = %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"protocol": "pll", "n": 2000, "engine": "count", "seed": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		Job struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.Job.ID == "" {
		t.Fatalf("POST /v1/jobs = %d %+v", resp.StatusCode, submitted)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + submitted.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			State  string `json:"state"`
			Result *struct {
				Leaders int `json:"leaders"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.State == "done" {
			if view.Result == nil || view.Result.Leaders != 1 {
				t.Fatalf("job finished with %+v, want one leader", view.Result)
			}
			break
		}
		if view.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestStoreSurvivesRestart boots the server with a durable store, runs
// an experiment, restarts the process loop on the same store file, and
// expects the experiment's aggregates to be served without re-running.
func TestStoreSurvivesRestart(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "results.jsonl")
	expSpec := `{"protocol": "pll", "n": 2000, "engine": "count", "seed": 5, "replicates": 4}`

	boot := func() (base string, cancel context.CancelFunc, done chan error) {
		ctx, cancelCtx := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done = make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-store", storePath}, ready)
		}()
		select {
		case addr := <-ready:
			return "http://" + addr, cancelCtx, done
		case err := <-done:
			t.Fatalf("server exited before listening: %v", err)
			return "", nil, nil
		}
	}
	getJSON := func(url string, out any) int {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	base, cancel, done := boot()
	resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader(expSpec))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		Experiment struct {
			ID string `json:"id"`
		} `json:"experiment"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := submitted.Experiment.ID

	type expView struct {
		State      string `json:"state"`
		Restored   bool   `json:"restored"`
		Aggregates *struct {
			Replicates int     `json:"replicates"`
			MeanSteps  float64 `json:"meanSteps"`
		} `json:"aggregates"`
	}
	var view expView
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(base+"/v1/experiments/"+id, &view)
		if view.State == "done" {
			break
		}
		if view.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("experiment state %q", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wantMeanSteps := view.Aggregates.MeanSteps

	// "Kill" the server and boot a fresh one on the same store.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	base, cancel, done = boot()
	defer func() {
		cancel()
		<-done
	}()

	var restored expView
	if code := getJSON(base+"/v1/experiments/"+id, &restored); code != http.StatusOK {
		t.Fatalf("GET restored experiment = %d", code)
	}
	if restored.State != "done" || restored.Aggregates == nil {
		t.Fatalf("restored view = %+v", restored)
	}
	if !restored.Restored {
		t.Error("restored experiment not marked restored")
	}
	if restored.Aggregates.MeanSteps != wantMeanSteps {
		t.Errorf("restored meanSteps %g != original %g", restored.Aggregates.MeanSteps, wantMeanSteps)
	}
}

// TestDebugListener boots with -debug-addr and checks that the second
// listener serves both the metrics exposition and the pprof index, and
// that the public listener serves /metrics too.
func TestDebugListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-debug-addr", debugAddr}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	}
	defer func() {
		cancel()
		if err := <-done; err != nil && err != http.ErrServerClosed {
			t.Errorf("server exit: %v", err)
		}
	}()

	get := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("http://" + debugAddr + "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "popprotod_runcore_submissions_total") {
		t.Errorf("debug /metrics = %d, missing runcore series (body: %.200s)", code, body)
	}
	if code, body := get("http://" + debugAddr + "/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("debug /debug/pprof/cmdline = %d", code)
	}
	if code, body := get(base + "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "popprotod_http_in_flight") {
		t.Errorf("public /metrics = %d, missing http series (body: %.200s)", code, body)
	}
}
