// Command popprotod serves population-protocol simulations over HTTP: the
// protocol registry as a catalog, leader elections and epidemic coverage
// runs as cached jobs, and census trajectories as server-sent events.
//
// Usage:
//
//	popprotod [-addr :8080] [-workers N] [-cache N] [-queue N] [-max-n N] [-max-n-batch N]
//	          [-store PATH] [-store-sync-interval D] [-store-segment-bytes N]
//	          [-experiments N] [-sweeps N] [-max-replicates N] [-max-cells N]
//	          [-lease-ttl D] [-debug-addr ADDR] [-log-json]
//	popprotod -worker -coordinator URL [-worker-id ID] [-workers N]
//
// Endpoints (see API.md for schemas):
//
//	GET    /v1/protocols               protocol catalog with parameter docs
//	POST   /v1/jobs                    submit a job
//	GET    /v1/jobs/{id}               job status and result
//	DELETE /v1/jobs/{id}               cancel a job
//	GET    /v1/jobs/{id}/trace         census trajectory (SSE)
//	POST   /v1/experiments             submit a Monte-Carlo ensemble
//	GET    /v1/experiments/{id}        experiment status and aggregates
//	DELETE /v1/experiments/{id}        cancel an experiment
//	GET    /v1/experiments/{id}/stream live aggregates (SSE)
//	POST   /v1/sweeps                  submit a parameter sweep (n grid × protocols)
//	GET    /v1/results                 query the durable result corpus (filters, pagination, scaling fits)
//	GET    /v1/sweeps/{id}             sweep status, cells, scaling summary
//	DELETE /v1/sweeps/{id}             cancel a sweep (cascades to its cells)
//	GET    /v1/sweeps/{id}/stream      live per-cell aggregates (SSE)
//	POST   /v1/cluster/leases          worker pull: grant a replicate-range lease
//	POST   /v1/cluster/leases/{id}/heartbeat  renew a lease
//	POST   /v1/cluster/leases/{id}/complete   post a range's partial aggregate
//	GET    /v1/cluster                 coordinator status (workers, ranges, leases)
//	GET    /v1/health                  liveness, uptime, build info, queue and cache counters
//	GET    /metrics                    Prometheus text-format exposition
//
// With -debug-addr set, a second listener (intended to stay private)
// serves /metrics plus the net/http/pprof profiling endpoints under
// /debug/pprof/.
//
// Identical specs are served from an LRU result cache: simulations are
// deterministic functions of their canonical spec, so the second
// request for an election is free. With -store PATH, finished jobs,
// experiments and sweeps are additionally committed to a durable
// segmented store (group-committed binary segments with per-record
// checksums; see API.md "Durability") and served back across restarts —
// the LRU becomes a cache in front of the store rather than the only
// copy, and GET /v1/results exposes the accumulated corpus. A v1 JSONL
// store at the same path is migrated in place on first open. The server
// drains gracefully on SIGINT/SIGTERM.
//
// With -worker, popprotod runs in worker mode instead of serving: it
// pulls replicate-range leases from the coordinator at -coordinator,
// executes them through the same deterministic ensemble machinery, and
// posts back binary partial aggregates. Ensembles submitted to the
// coordinator are then sharded across every attached worker, and the
// merged result is bit-identical to a single-node run of the same spec
// (see "Scaling out" in the README).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/obs"
	"popproto/internal/service"
	"popproto/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "popprotod:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled (or the listener fails). When ready is
// non-nil the bound address is sent on it once the server is listening,
// which lets tests use "-addr 127.0.0.1:0".
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("popprotod", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "simulation worker pool size (0 = NumCPU, capped at 8)")
	cache := fs.Int("cache", 0, "finished-job LRU cache capacity (0 = 256)")
	queue := fs.Int("queue", 0, "queued-job limit before 429s (0 = 256)")
	maxN := fs.Int("max-n", 0, "largest accepted population size on the count engine (0 = 2e8)")
	maxNAgent := fs.Int("max-n-agent", 0, "largest accepted population size on the agent engine (0 = 1e7)")
	maxNBatch := fs.Int("max-n-batch", 0, "largest accepted population size on the batch and hybrid engines (0 = max-n if set, else 2e9)")
	storePath := fs.String("store", "", "durable segmented result store (a directory; a v1 JSONL file is migrated in place); finished jobs and experiments survive restarts (empty = in-memory only)")
	storeSync := fs.Duration("store-sync-interval", 0, "group-commit flush deadline: a Put is acknowledged within about this long even under light load (0 = 5ms)")
	storeSegBytes := fs.Int("store-segment-bytes", 0, "store segment size before sealing with a footer index (0 = 16MiB)")
	expWorkers := fs.Int("experiments", 0, "concurrently running experiments (0 = 1); each spawns up to -workers replicate goroutines of its own, so total simulation concurrency is about workers*(1+experiments+sweeps)")
	maxReplicates := fs.Int("max-replicates", 0, "largest accepted experiment (and sweep-cell) ensemble size (0 = 1e5)")
	sweepWorkers := fs.Int("sweeps", 0, "concurrently running sweeps (0 = 1); a sweep runs its cells sequentially, each cell fanning replicates over up to -workers goroutines")
	maxCells := fs.Int("max-cells", 0, "largest cell count a sweep's axes may expand into (0 = 128)")
	leaseTTL := fs.Duration("lease-ttl", 0, "cluster lease time-to-live before an unrenewed replicate-range lease is reissued (0 = 15s)")
	workerMode := fs.Bool("worker", false, "run as a cluster worker pulling replicate-range leases instead of serving HTTP")
	coordinator := fs.String("coordinator", "", "coordinator base URL for -worker mode (e.g. http://host:8080)")
	workerID := fs.String("worker-id", "", "worker id reported to the coordinator (empty = host:pid)")
	debugAddr := fs.String("debug-addr", "", "separate listener for /metrics and /debug/pprof/* (empty = off; keep private)")
	logJSON := fs.Bool("log-json", false, "emit one structured JSON log line per HTTP request")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *workerMode {
		if *coordinator == "" {
			return errors.New("-worker needs -coordinator URL")
		}
		w := &cluster.Worker{
			Coordinator: strings.TrimRight(*coordinator, "/"),
			ID:          *workerID,
			Workers:     *workers,
			Logf:        log.Printf,
		}
		log.Printf("popprotod worker pulling leases from %s", *coordinator)
		if err := w.Run(ctx); !errors.Is(err, context.Canceled) {
			return err
		}
		return nil
	}

	reg := obs.NewRegistry()

	var st *store.Store
	if *storePath != "" {
		var err error
		st, err = store.OpenOptions(*storePath, store.Options{
			SyncInterval: *storeSync,
			SegmentBytes: int64(*storeSegBytes),
		})
		if err != nil {
			return err
		}
		defer st.Close()
		st.Instrument(reg)
		segs, sealed := st.Segments()
		boot := fmt.Sprintf("store %s: %d results across %d segments (%d sealed)",
			*storePath, st.Len(), segs, sealed)
		if st.Migrated() {
			boot += ", migrated from v1 JSONL"
		}
		if dropped := st.Dropped(); dropped > 0 {
			boot += fmt.Sprintf(", %d torn/corrupt records skipped", dropped)
		}
		log.Print(boot)
	}

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	mgr := service.NewManager(service.Options{
		Workers:           *workers,
		CacheSize:         *cache,
		QueueSize:         *queue,
		MaxN:              *maxN,
		MaxNAgent:         *maxNAgent,
		MaxNBatch:         *maxNBatch,
		Store:             st,
		ExperimentWorkers: *expWorkers,
		MaxReplicates:     *maxReplicates,
		SweepWorkers:      *sweepWorkers,
		MaxSweepCells:     *maxCells,
		LeaseTTL:          *leaseTTL,
		Metrics:           reg,
		Logger:            logger,
	})
	server := &http.Server{
		Handler:           service.NewHandler(mgr),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		mgr.Close()
		return err
	}
	log.Printf("popprotod listening on %s", ln.Addr())

	var debugServer *http.Server
	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			mgr.Close()
			return err
		}
		debugServer = &http.Server{
			Handler:           debugMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		log.Printf("debug listener on %s (/metrics, /debug/pprof/)", debugLn.Addr())
		go func() {
			if err := debugServer.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() {
		errc <- server.Serve(ln)
	}()

	select {
	case err := <-errc:
		mgr.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("shutting down (draining for up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugServer != nil {
		debugServer.Close()
	}
	err = server.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Long-lived SSE streams may outlast the drain window.
		err = server.Close()
	}
	mgr.Close()
	return err
}

// debugMux builds the private diagnostics handler: the shared metrics
// registry plus the pprof profiling endpoints, explicitly routed so the
// import stays side-effect free on the public mux.
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
