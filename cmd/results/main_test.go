package main

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"popproto/internal/ensemble"
	"popproto/internal/service"
	"popproto/internal/store"
)

// startServer serves a handler over a store seeded with a job and a
// scaling ladder of experiment records, without running anything.
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "results.store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	put := func(kind store.Kind, key, id string, spec, data any) {
		t.Helper()
		if err := st.Put(kind, key, id, spec, data); err != nil {
			t.Fatal(err)
		}
	}
	put(store.KindJob, "pll n=100 engine=count", "j100",
		map[string]any{"protocol": "pll", "n": 100, "engine": "count"},
		map[string]any{"steps": 420})
	for i, n := range []int{1000, 2000, 4000} {
		put(store.KindExperiment, fmt.Sprintf("pll n=%d engine=count x8", n), fmt.Sprintf("e%d", i),
			service.ExperimentSpec{Protocol: "pll", N: n, Engine: "count", Replicates: 8},
			ensemble.Aggregates{Replicates: 8, MeanParallelTime: 10 + 3*float64(i)})
	}

	m := service.NewManager(service.Options{Workers: 1, Store: st})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(srv.Close)
	return srv
}

func TestListTable(t *testing.T) {
	srv := startServer(t)
	var out strings.Builder
	if err := run([]string{"-addr", srv.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"KIND", "j100", "e0", "e1", "e2", "4 record(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFiltersAndLimit(t *testing.T) {
	srv := startServer(t)
	var out strings.Builder
	if err := run([]string{"-addr", srv.URL, "-kind", "experiment", "-n-min", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "j100") || !strings.Contains(got, "2 record(s)") {
		t.Errorf("filtered output wrong:\n%s", got)
	}

	out.Reset()
	// -limit exercises the pagination loop (page size forced below it).
	if err := run([]string{"-addr", srv.URL, "-limit", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 record(s)") {
		t.Errorf("limited output wrong:\n%s", out.String())
	}
}

func TestScalingTable(t *testing.T) {
	srv := startServer(t)
	var out strings.Builder
	if err := run([]string{"-addr", srv.URL, "-scaling"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"3 stored experiment(s)", "PROTOCOL", "pll", "count"} {
		if !strings.Contains(got, want) {
			t.Errorf("scaling output missing %q:\n%s", want, got)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	srv := startServer(t)
	var out strings.Builder
	if err := run([]string{"-addr", srv.URL, "-kind", "job", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"id": "j100"`) {
		t.Errorf("json output wrong:\n%s", out.String())
	}
}

func TestServerErrorsSurface(t *testing.T) {
	srv := startServer(t)
	err := run([]string{"-addr", srv.URL, "-kind", "banana"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "banana") {
		t.Errorf("bad-kind error = %v, want the server's message", err)
	}
	if err := run([]string{"-addr", srv.URL, "extra"}, &strings.Builder{}); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run([]string{"-addr", srv.URL, "-limit", "-3"}, &strings.Builder{}); err == nil {
		t.Error("negative limit accepted")
	}
}
