// Command results queries a running popprotod's durable result corpus
// through GET /v1/results: list stored jobs, experiments, and sweeps
// with filters, or fit the cross-protocol scaling curves over every
// stored experiment with -scaling.
//
// Usage:
//
//	results [-addr URL] [-kind job|experiment|sweep] [-protocol P]
//	        [-engine E] [-n-min N] [-n-max N] [-limit K] [-scaling] [-json]
//
// Without -scaling the matching records print as a table (or raw JSON
// with -json), following pagination cursors until -limit records have
// been printed (0 = everything). With -scaling the server fits
// mean parallel time = a·lg n + b per (protocol, m) over the matching
// experiments and the fits print as a table.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "results:", err)
		os.Exit(1)
	}
}

// resultView mirrors service.ResultView (decoupled so the CLI only
// depends on the wire format, like any external client would).
type resultView struct {
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	ID      string          `json:"id"`
	SavedAt time.Time       `json:"savedAt"`
	Spec    json.RawMessage `json:"spec"`
	Data    json.RawMessage `json:"data"`
}

type resultsPage struct {
	Results    []resultView `json:"results"`
	NextCursor string       `json:"nextCursor"`
}

type scalingFit struct {
	Protocol       string   `json:"protocol"`
	M              int      `json:"m"`
	Engines        []string `json:"engines"`
	Points         int      `json:"points"`
	A              float64  `json:"a"`
	B              float64  `json:"b"`
	R2             float64  `json:"r2"`
	LogLogExponent float64  `json:"logLogExponent"`
}

type scalingView struct {
	Aggregate   string       `json:"aggregate"`
	Experiments int          `json:"experiments"`
	Fits        []scalingFit `json:"fits"`
}

type apiError struct {
	Error string `json:"error"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("results", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the popprotod server")
	kind := fs.String("kind", "", `restrict to one record kind ("job", "experiment", "sweep")`)
	protocol := fs.String("protocol", "", "restrict to one protocol (sweeps match through their protocol axis)")
	engine := fs.String("engine", "", "restrict to one engine")
	nMin := fs.Int("n-min", 0, "minimum population size (0 = unbounded)")
	nMax := fs.Int("n-max", 0, "maximum population size (0 = unbounded)")
	limit := fs.Int("limit", 0, "stop after this many records (0 = everything)")
	scaling := fs.Bool("scaling", false, "fit scaling curves over the matching experiments instead of listing records")
	asJSON := fs.Bool("json", false, "print raw JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *nMin < 0 || *nMax < 0 || *limit < 0 {
		return fmt.Errorf("-n-min, -n-max, and -limit must be non-negative")
	}

	base := strings.TrimRight(*addr, "/")
	q := url.Values{}
	for name, val := range map[string]string{
		"kind": *kind, "protocol": *protocol, "engine": *engine,
	} {
		if val != "" {
			q.Set(name, val)
		}
	}
	if *nMin > 0 {
		q.Set("n_min", strconv.Itoa(*nMin))
	}
	if *nMax > 0 {
		q.Set("n_max", strconv.Itoa(*nMax))
	}

	if *scaling {
		return fetchScaling(base, q, *asJSON, stdout)
	}
	return fetchPages(base, q, *limit, *asJSON, stdout)
}

// httpError is a non-200 response, keeping the status so fetchPages can
// recognize an expired cursor (410) and restart the walk.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// get issues one GET against the server, decoding an error payload into
// a readable message on non-200 responses.
func get(rawURL string, out any) error {
	resp, err := http.Get(rawURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return &httpError{resp.StatusCode, fmt.Sprintf("server: %s (HTTP %d)", apiErr.Error, resp.StatusCode)}
		}
		return &httpError{resp.StatusCode,
			fmt.Sprintf("server returned HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
	}
	return json.Unmarshal(body, out)
}

// fetchPages follows pagination cursors until limit records have been
// collected (0 = until the final page) and renders them. A 410 Gone
// mid-walk means the store compacted under the cursor; the walk
// restarts from the first page (bounded, in case the server churns).
func fetchPages(base string, q url.Values, limit int, asJSON bool, stdout io.Writer) error {
	const pageSize = 200
	const maxRestarts = 3
	var all []resultView
	cursor := ""
	restarts := 0
	for {
		want := pageSize
		if limit > 0 && limit-len(all) < want {
			want = limit - len(all)
		}
		qq := url.Values{}
		for k, v := range q {
			qq[k] = v
		}
		qq.Set("limit", strconv.Itoa(want))
		if cursor != "" {
			qq.Set("cursor", cursor)
		}
		var page resultsPage
		if err := get(base+"/v1/results?"+qq.Encode(), &page); err != nil {
			var he *httpError
			if errors.As(err, &he) && he.status == http.StatusGone && restarts < maxRestarts {
				restarts++
				all, cursor = nil, ""
				continue
			}
			return err
		}
		all = append(all, page.Results...)
		if page.NextCursor == "" || (limit > 0 && len(all) >= limit) {
			break
		}
		cursor = page.NextCursor
	}
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}

	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "KIND\tID\tSAVED\tKEY")
	for _, r := range all {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			r.Kind, r.ID, r.SavedAt.Format(time.RFC3339), r.Key)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d record(s)\n", len(all))
	return nil
}

// fetchScaling renders the server-side scaling fit.
func fetchScaling(base string, q url.Values, asJSON bool, stdout io.Writer) error {
	qq := url.Values{}
	for k, v := range q {
		qq[k] = v
	}
	qq.Set("aggregate", "scaling")
	var sv scalingView
	if err := get(base+"/v1/results?"+qq.Encode(), &sv); err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sv)
	}
	fmt.Fprintf(stdout, "scaling fit over %d stored experiment(s)\n", sv.Experiments)
	if len(sv.Fits) == 0 {
		fmt.Fprintln(stdout, "no fittable groups (need >= 2 distinct n per protocol/m)")
		return nil
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "PROTOCOL\tM\tENGINES\tPOINTS\tTIME ≈ a·lg n + b\tR²\tLOG-LOG EXP")
	for _, f := range sv.Fits {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.3f·lg n + %.3f\t%.4f\t%.3f\n",
			f.Protocol, f.M, strings.Join(f.Engines, ","), f.Points, f.A, f.B, f.R2, f.LogLogExponent)
	}
	return tw.Flush()
}
