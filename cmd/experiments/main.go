// Command experiments regenerates the paper-reproduction experiments: the
// empirical Tables 1–3 and the per-lemma measurements indexed in DESIGN.md
// §4. Reports are written as Markdown to stdout (and optionally a file),
// each ending in PASS/FAIL verdicts against the paper's claims.
//
// Usage:
//
//	experiments -list
//	experiments [-quick] [-seed N] [-engine agent|count|batch|hybrid|auto] [-replicates R] [-ci X] [-out FILE] [ids...]
//
// With no ids, every experiment runs in registry order. -replicates and
// -ci tune the ensemble-executed experiments (Table 1/2, Theorem 1):
// -replicates overrides the per-cell ensemble size, and -ci stops each
// ensemble early once the relative 95% CI half-width of the mean
// stabilization time drops to the target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"popproto/internal/cliflags"
	"popproto/internal/harness"
	"popproto/internal/pp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	quick := fs.Bool("quick", false, "smoke-test scale (small n, few repetitions)")
	seed := cliflags.Seed(fs, harness.DefaultConfig().Seed, "master seed")
	workers := cliflags.Workers(fs)
	// Registered through internal/cliflags, so the engine catalog (incl.
	// "auto", resolved per measurement cell) cannot drift as engines are
	// added.
	engine := cliflags.Engine(fs, "agent", "simulation engine for election sweeps")
	replicates := cliflags.Replicates(fs, 0,
		"override the replicate count per ensemble cell in Table 1/2 and Theorem 1 (0 = experiment defaults)")
	ci := cliflags.CI(fs)
	out := fs.String("out", "", "also write the combined report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliflags.CheckCI(*ci); err != nil {
		return err
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	eng, err := pp.ParseEngine(*engine)
	if err != nil {
		return err
	}
	cfg := harness.Config{
		Quick: *quick, Seed: *seed, Workers: *workers, Engine: eng,
		Replicates: *replicates, CITarget: *ci,
	}
	selected := harness.All()
	if fs.NArg() > 0 {
		selected = selected[:0]
		for _, id := range fs.Args() {
			e, ok := harness.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	var combined strings.Builder
	failures := 0
	for _, e := range selected {
		start := time.Now()
		res := e.Run(cfg)
		elapsed := time.Since(start).Round(10 * time.Millisecond)
		fmt.Fprintf(os.Stderr, "[%s] finished in %v\n", e.ID, elapsed)
		fmt.Println(res.Markdown)
		combined.WriteString(res.Markdown)
		combined.WriteString("\n")
		if !res.Passed() {
			failures++
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(combined.String()), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) had failing verdicts", failures)
	}
	return nil
}
