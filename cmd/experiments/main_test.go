package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"popproto/internal/pp"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run([]string{"nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestQuickSingleExperimentWithOutput runs the cheapest experiment end to
// end and checks the report file.
func TestQuickSingleExperimentWithOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-quick", "-out", out, "table3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Experiment `table3`") {
		t.Fatalf("report missing experiment header:\n%s", data)
	}
	if !strings.Contains(string(data), "[PASS]") {
		t.Fatalf("report has no passing verdicts:\n%s", data)
	}
}

// TestEngineFlagAcceptsAllEngines: the -engine flag (whose usage string is
// derived from pp.Engines) must parse every declared engine name. The
// bogus experiment id stops the run right after engine parsing, so the
// check stays cheap: an unknown-experiment error proves the engine parsed.
func TestEngineFlagAcceptsAllEngines(t *testing.T) {
	for _, name := range pp.EngineNames() {
		err := run([]string{"-engine", name, "nope"})
		if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("engine %q: got %v, want unknown-experiment error", name, err)
		}
	}
	if err := run([]string{"-engine", "quantum", "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("bogus engine: got %v, want unknown-engine error", err)
	}
}
