package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run([]string{"nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestQuickSingleExperimentWithOutput runs the cheapest experiment end to
// end and checks the report file.
func TestQuickSingleExperimentWithOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-quick", "-out", out, "table3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Experiment `table3`") {
		t.Fatalf("report missing experiment header:\n%s", data)
	}
	if !strings.Contains(string(data), "[PASS]") {
		t.Fatalf("report has no passing verdicts:\n%s", data)
	}
}
