// Command sweep runs a parameter sweep — a population grid × a protocol
// list, every cell a full Monte-Carlo ensemble — and reports the grid
// with per-cell confidence intervals plus the fitted scaling curves:
// mean parallel time = a·lg n + b with R², and the log-log power
// exponent that separates Θ(log n) from polynomial growth. It is the
// command-line counterpart of popprotod's POST /v1/sweeps, checking the
// paper's Theorem 1 shape (and the Sudo–Masuzawa lower bound's) in one
// invocation.
//
// Usage:
//
//	sweep -protocols pll -ns 1e3,1e4,1e5,1e6 -replicates 20
//	sweep -protocols pll,angluin -ns 256,1024,4096 -engine count -ci 0.1
//
// The default engine is "auto": each cell resolves to the registry's
// recommendation for its protocol and population size — the per-agent
// engine for small populations, the phase-adaptive hybrid engine for
// large census-friendly ones — so a 10³..10⁸ grid is practical without
// thinking about engines. With -chart the mean-time curve is rendered
// against lg n per protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"popproto/internal/asciichart"
	"popproto/internal/cliflags"
	"popproto/internal/pp"
	"popproto/internal/sweep"
	"popproto/internal/table"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	protocols := fs.String("protocols", "pll", "comma-separated protocol registry keys (the protocol axis)")
	nsFlag := fs.String("ns", "1000,10000,100000", "comma-separated population sizes (the n axis; scientific notation like 1e5 is accepted)")
	msFlag := fs.String("ms", "", "comma-separated knowledge parameters for the PLL variants (empty = canonical ⌈lg n⌉)")
	engineName := cliflags.Engine(fs, "auto", "per-cell simulation engine")
	seed := cliflags.Seed(fs, 0, "per-cell ensemble base seed (0 = derived per cell, so each cell matches the seedless experiment with its spec)")
	replicates := cliflags.Replicates(fs, 20, "Monte-Carlo replicates per cell")
	ciTarget := cliflags.CI(fs)
	workers := cliflags.Workers(fs)
	maxParallel := fs.Float64("max-parallel", 0, "per-replicate cap in parallel time (0 = protocol default budget)")
	chart := fs.Bool("chart", false, "render an ASCII chart of mean time against n (log x) per protocol")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliflags.CheckCI(*ciTarget); err != nil {
		return err
	}
	engine, err := pp.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return fmt.Errorf("-ns: %w", err)
	}
	ms, err := parseInts(*msFlag)
	if err != nil {
		return fmt.Errorf("-ms: %w", err)
	}

	spec := sweep.Spec{
		Protocols:       splitList(*protocols),
		Ns:              ns,
		Ms:              ms,
		Engine:          engine,
		Seed:            *seed,
		Replicates:      *replicates,
		CITarget:        *ciTarget,
		MaxParallelTime: *maxParallel,
	}
	canon, cells, err := sweep.Canonicalize(spec)
	if err != nil {
		return err
	}
	fmt.Printf("sweep: %d cells (%s × n∈{%s}), %d replicates per cell, engine %s\n",
		len(cells), strings.Join(canon.Protocols, ","), joinInts(canon.Ns), canon.Replicates, engine)

	res, err := sweep.Run(ctx, canon, sweep.Options{
		Workers: *workers,
		OnCellStart: func(c sweep.Cell) {
			fmt.Fprintf(os.Stderr, "[%3d/%d] %s n=%d engine=%s...\n",
				c.Index+1, len(cells), c.Protocol, c.N, c.Engine)
		},
	})
	if err != nil {
		return err
	}

	printGrid(res)
	printFits(res)
	if *chart {
		printCharts(res)
	}

	for _, o := range res.Outcomes {
		if o.Aggregates.Stabilized < o.Aggregates.Replicates {
			return fmt.Errorf("cell %s n=%d: %d of %d replicates did not stabilize",
				o.Protocol, o.N, o.Aggregates.Replicates-o.Aggregates.Stabilized, o.Aggregates.Replicates)
		}
	}
	return nil
}

// printGrid renders the per-cell table: mean parallel time with its 95%
// CI, tail quantiles, and the engine each cell resolved to.
func printGrid(res sweep.Result) {
	tbl := table.New("protocol", "n", "m", "engine", "reps", "mean t", "95% CI", "p50", "p90", "t / lg n")
	for _, o := range res.Outcomes {
		agg := o.Aggregates
		lg := math.Log2(float64(o.N))
		tbl.AddRowf(o.Protocol, o.N, o.M, o.Engine.String(), agg.Replicates,
			fmt.Sprintf("%.2f", agg.MeanParallelTime),
			fmt.Sprintf("[%.2f, %.2f]", agg.CILo, agg.CIHi),
			fmt.Sprintf("%.2f", agg.P50), fmt.Sprintf("%.2f", agg.P90),
			fmt.Sprintf("%.2f", agg.MeanParallelTime/lg))
	}
	fmt.Println()
	fmt.Print(tbl.Markdown())
}

// printFits renders the scaling summary: the Theorem 1 check as data.
func printFits(res sweep.Result) {
	if len(res.Summary.Fits) == 0 {
		fmt.Println("\nno scaling fit (need at least two distinct population sizes per protocol)")
		return
	}
	fmt.Println()
	for _, f := range res.Summary.Fits {
		label := f.Protocol
		if f.M != 0 {
			label = fmt.Sprintf("%s (m=%d)", f.Protocol, f.M)
		}
		fmt.Printf("%-16s time = %.3f·lg n %+.3f (R² %.3f over %d sizes, engines %s); log-log exponent %.3f (Θ(log n) ⇒ ≈ 0, Θ(n) ⇒ ≈ 1)\n",
			label, f.A, f.B, f.R2, f.Points, strings.Join(f.Engines, "+"), f.Exponent)
	}
}

// printCharts renders one mean-time-vs-n chart (log x) per protocol
// group.
func printCharts(res sweep.Result) {
	byGroup := make(map[string][]sweep.Outcome)
	var order []string
	for _, o := range res.Outcomes {
		k := fmt.Sprintf("%s m=%d", o.Protocol, o.M)
		if _, ok := byGroup[k]; !ok {
			order = append(order, k)
		}
		byGroup[k] = append(byGroup[k], o)
	}
	for _, k := range order {
		outcomes := byGroup[k]
		if len(outcomes) < 2 {
			continue
		}
		xs := make([]float64, len(outcomes))
		ys := make([]float64, len(outcomes))
		for i, o := range outcomes {
			xs[i] = float64(o.N)
			ys[i] = o.Aggregates.MeanParallelTime
		}
		fmt.Print(asciichart.Plot(
			[]asciichart.Series{{Name: k + " mean stabilization time", X: xs, Y: ys}},
			asciichart.Options{Width: 64, Height: 12, LogX: true, XLabel: "n", YLabel: "parallel time"},
		))
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseInts parses a comma-separated integer list; scientific notation
// (1e5) is accepted because population axes are usually powers of ten.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			f, ferr := strconv.ParseFloat(part, 64)
			if ferr != nil || f != math.Trunc(f) || f > math.MaxInt32 {
				return nil, fmt.Errorf("not an integer: %q", part)
			}
			v = int(f)
		}
		out = append(out, v)
	}
	return out, nil
}

// joinInts renders an int list for the banner line.
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
