package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunTinySweep(t *testing.T) {
	args := []string{"-protocols", "pll", "-ns", "256,512", "-replicates", "4", "-workers", "2", "-seed", "3"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	// With -chart the mean-time curve renders too.
	if err := run(context.Background(), append(args, "-chart")); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiProtocol(t *testing.T) {
	// Two protocols on the auto engine; scientific notation on the axis.
	err := run(context.Background(), []string{
		"-protocols", "pll,angluin", "-ns", "1.28e2,512", "-replicates", "3", "-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-badflag"},
		{"-ns", "abc"},
		{"-ns", ""},
		{"-protocols", "nope", "-ns", "128"},
		{"-engine", "quantum", "-ns", "128"},
		{"-ci", "1.5", "-ns", "128"},
		{"-replicates", "0", "-ns", "128"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestRunReportsNonStabilization(t *testing.T) {
	// An absurdly small budget cannot elect: the command must fail and
	// name the cell.
	err := run(context.Background(), []string{
		"-protocols", "angluin", "-ns", "512", "-replicates", "2", "-max-parallel", "0.05",
	})
	if err == nil || !strings.Contains(err.Error(), "did not stabilize") {
		t.Fatalf("want stabilization failure, got %v", err)
	}
}
