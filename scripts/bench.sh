#!/usr/bin/env bash
# bench.sh — run the key performance benchmarks and record the results as
# a dated JSON summary, so the repo accumulates a perf trajectory.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 1x: one run per case,
#               the large-n elections already take ~20 s each)
#   BENCH_RE    benchmark regex (default: the count/batch/hybrid PLL race at
#               n=10^7, the engine head-to-heads, the large-n rows, the
#               ensemble executor's Table 1 row — 50 replicates at
#               n=10^5, serial vs all-core, whose wall-clock ratio is
#               the multi-core replication speedup — and the sweep
#               orchestrator's PLL scaling row, n∈{1e3,1e4,1e5}, which
#               reports the fitted log-slope/R² and bounds the sweep
#               layer's overhead)
#   STORE_BENCHTIME  -benchtime for the store benchmarks (default 2s;
#               they need wall-clock, not iteration counts, because the
#               append paths are fsync-bound)
#   POPPROTO_BENCH_XL=1 additionally runs the 10^8- and 10^9-agent cases
#               (including the batch engine's Table 1 row at n=10^8 and
#               the hybrid engine's n=10^9 PLL election)
#
# Besides BENCH_RE, the reactive-pair-index micro-benchmark in
# internal/pp (incremental maintenance vs from-scratch re-enumeration at
# live ∈ {64, 384, 1024}) always runs, so the index's O(row+col) claim
# is re-measured alongside the end-to-end rows. So do the store
# benchmarks in internal/store: durable-append throughput (v1
# fsync-per-record vs v2 group commit, at 1/16/64 writers) and boot
# replay over a 100k-record corpus (v1 full scan vs v2 footer indexes).
#
# The JSON is an object {date, go, commit, benchtime, benchmarks: [...]},
# one entry per benchmark line with every reported metric (ns/op, B/op,
# allocs/op, and custom metrics like parallel-time/op and max-heap-MiB).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_$(date -u +%Y-%m-%d).json}
BENCH_RE=${BENCH_RE:-'^BenchmarkPLL$|^BenchmarkPLLWindow$|^BenchmarkPLLSeeds$|Engines_|LargeN_|Table1_PLL_XL|^BenchmarkEnsemble_|^BenchmarkSweep_|^BenchmarkCluster_'}
BENCHTIME=${BENCHTIME:-1x}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks matching /${BENCH_RE}/ with -benchtime ${BENCHTIME}..." >&2
go test -run '^$' -bench "$BENCH_RE" -benchmem -benchtime "$BENCHTIME" \
  -timeout 120m . | tee "$RAW" >&2

echo "running reactive-pair index micro-benchmarks..." >&2
go test -run '^$' -bench '^BenchmarkReactivePairIndex$' -benchmem \
  -timeout 10m ./internal/pp | tee -a "$RAW" >&2

echo "running store append/replay benchmarks..." >&2
go test -run '^$' -bench '^BenchmarkStore_' -benchmem \
  -benchtime "${STORE_BENCHTIME:-2s}" \
  -timeout 30m ./internal/store | tee -a "$RAW" >&2

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v go_version="$(go version | awk '{print $3}')" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v benchtime="$BENCHTIME" '
BEGIN {
  printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, go_version, commit
  printf "  \"benchtime\": \"%s\",\n  \"benchmarks\": [", benchtime
  first = 1
}
/^Benchmark/ {
  name = $1
  iters = $2
  if (!first) printf ","
  first = 0
  printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
  # Remaining fields come in value-unit pairs (ns/op, B/op, allocs/op,
  # plus any b.ReportMetric custom units).
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/"/, "", unit)
    printf ", \"%s\": %s", unit, $i
  }
  printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
