#!/usr/bin/env bash
# load.sh — closed-loop load harness for the popprotod HTTP service. It
# boots the server, runs N concurrent clients each driving a mixed
# workload (~70% jobs, ~20% experiments, ~10% sweeps; seeds drawn from a
# small pool so the result cache gets real hits), scrapes /metrics before
# and after, and emits a BENCH_*.json-compatible record with the
# request-latency p50/p99, sustained RPS, and the cache hit rate taken
# from the popprotod_runcore_submissions_total counters — the numbers
# come from the server's own exposition, not client-side bookkeeping.
#
# Every HTTP request a client makes (submits and status polls alike) is
# one latency sample; a client issues its next request only after the
# previous one completes, so the offered load is closed-loop by
# construction.
#
# Usage:
#   scripts/load.sh [output.json]
#
# Environment:
#   LOAD_DURATION     seconds of sustained load (default 30)
#   LOAD_CONCURRENCY  concurrent closed-loop clients (default 4)
#   LOAD_N            population size for jobs (default 50000)
#   LOAD_SEEDS        seed-pool size; smaller = more cache hits (default 8)
#   LOAD_PROFILE      "mixed" (default; seeds drawn from the pool, cache
#                     gets real hits) or "write": every request uses a
#                     unique seed, so nothing hits the cache and every
#                     completion group-commits to the store — the profile
#                     that exercises the store's write path under load
#   LOAD_PORT         server port (default 8097)
#   LOAD_SHORT=1      CI mode: 5 s, 2 clients, n=5000
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_$(date -u +%Y-%m-%d)_load.json}
DURATION=${LOAD_DURATION:-30}
CONCURRENCY=${LOAD_CONCURRENCY:-4}
N=${LOAD_N:-50000}
SEEDS=${LOAD_SEEDS:-8}
PROFILE=${LOAD_PROFILE:-mixed}
PORT=${LOAD_PORT:-8097}
if [ "${LOAD_SHORT:-0}" = 1 ]; then
  DURATION=5 CONCURRENCY=2 N=5000
fi
case "$PROFILE" in mixed|write) ;; *)
  echo "LOAD_PROFILE must be mixed or write, got $PROFILE" >&2; exit 1 ;;
esac
BASE="http://127.0.0.1:${PORT}"

WORKDIR=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

BIN="$WORKDIR/popprotod"
go build -o "$BIN" ./cmd/popprotod

SERVER_PID=
"$BIN" -addr "127.0.0.1:${PORT}" -store "$WORKDIR/results.store" 2>"$WORKDIR/server.log" &
SERVER_PID=$!
for _ in $(seq 1 50); do
  curl -fs "$BASE/v1/health" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "$BASE/v1/health" >/dev/null || { echo "server never came up" >&2; exit 1; }

# submissions_stats FILE -> "hits total" from a /metrics snapshot. The
# denominator excludes outcome="joined": a join coalesced onto an
# identical in-flight run, so it was never a lookup against finished
# work — counting joins used to deflate the reported hit rate under
# concurrency even when every finished-work lookup hit.
submissions_stats() {
  awk '/^popprotod_runcore_submissions_total\{/ {
    if ($0 !~ /outcome="joined"/) total += $2
    if ($0 ~ /outcome="hit"/ || $0 ~ /outcome="restored"/) hits += $2
  } END { printf "%d %d\n", hits, total }' "$1"
}

curl -fs "$BASE/metrics" >"$WORKDIR/metrics.before"

# One closed-loop client: submit, then poll the run to completion; every
# request appends its wall time (seconds) to the client's sample file.
client() {
  local id=$1 samples="$WORKDIR/lat.$1" deadline=$(( $(date +%s) + DURATION )) i=0
  : >"$samples"
  # timed_req METHOD URL [BODY] -> response body; latency appended to samples.
  timed_req() {
    local out
    if [ "$1" = POST ]; then
      out=$(curl -fs -X POST -d "$3" -w $'\n%{time_total}' "$2") || return 1
    else
      out=$(curl -fs -w $'\n%{time_total}' "$2") || return 1
    fi
    printf '%s\n' "$out" | tail -n 1 >>"$samples"
    printf '%s\n' "$out" | sed '$d'
  }
  while [ "$(date +%s)" -lt "$deadline" ]; do
    i=$((i + 1))
    local seed kind=$((i % 10)) path rid body spec
    if [ "$PROFILE" = write ]; then
      # Unique seed per request: every spec is new, every completion is
      # a store commit, the cache never hits.
      seed=$((id * 1000000 + i))
    else
      seed=$(( (id * 7919 + i * 104729) % SEEDS ))
    fi
    if [ "$kind" -lt 7 ]; then
      path=/v1/jobs
      spec='{"protocol": "pll", "n": '"$N"', "engine": "count", "seed": '"$seed"'}'
    elif [ "$kind" -lt 9 ]; then
      path=/v1/experiments
      spec='{"protocol": "pll", "n": '"$N"', "engine": "count", "seed": '"$seed"', "replicates": 4}'
    else
      path=/v1/sweeps
      spec='{"protocols": ["pll"], "ns": ['"$((N / 10))"', '"$N"'], "engine": "count", "replicates": 2, "seed": '"$seed"'}'
    fi
    body=$(timed_req POST "$BASE$path" "$spec") || continue
    rid=$(printf '%s' "$body" | jq -r '.job.id // .experiment.id // .sweep.id')
    [ -n "$rid" ] && [ "$rid" != null ] || continue
    while :; do
      body=$(timed_req GET "$BASE$path/$rid") || break
      case "$(printf '%s' "$body" | jq -r '.state')" in
        done|failed|canceled) break ;;
      esac
      [ "$(date +%s)" -lt "$((deadline + 30))" ] || break
      sleep 0.05
    done
  done
}

echo "load: $PROFILE profile, $CONCURRENCY clients, ${DURATION}s, n=$N, seed pool $SEEDS" >&2
START_NS=$(date +%s%N)
PIDS=()
for c in $(seq 1 "$CONCURRENCY"); do
  client "$c" &
  PIDS+=($!)
done
for pid in "${PIDS[@]}"; do wait "$pid"; done
ELAPSED_NS=$(( $(date +%s%N) - START_NS ))

curl -fs "$BASE/metrics" >"$WORKDIR/metrics.after"

cat "$WORKDIR"/lat.* | sort -n >"$WORKDIR/lat.sorted"
REQUESTS=$(wc -l <"$WORKDIR/lat.sorted")
[ "$REQUESTS" -gt 0 ] || { echo "no requests completed" >&2; exit 1; }

# pctl P -> sorted-sample value at percentile P, in milliseconds.
pctl() {
  awk -v p="$1" 'BEGIN { ms = 0 } { v[NR] = $1 }
    END { i = int((NR - 1) * p / 100 + 0.5) + 1; printf "%.3f", v[i] * 1000 }' \
    "$WORKDIR/lat.sorted"
}
P50=$(pctl 50)
P99=$(pctl 99)
RPS=$(awk -v r="$REQUESTS" -v ns="$ELAPSED_NS" 'BEGIN { printf "%.2f", r / (ns / 1e9) }')

read -r HITS_BEFORE TOTAL_BEFORE < <(submissions_stats "$WORKDIR/metrics.before")
read -r HITS_AFTER TOTAL_AFTER < <(submissions_stats "$WORKDIR/metrics.after")
SUBMITS=$((TOTAL_AFTER - TOTAL_BEFORE))
HITS=$((HITS_AFTER - HITS_BEFORE))
HIT_RATE=$(awk -v h="$HITS" -v t="$SUBMITS" 'BEGIN { printf "%.4f", (t > 0 ? h / t : 0) }')

NAME=LoadMixed
[ "$PROFILE" = write ] && NAME=LoadWrite
jq -n \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --arg go "$(go version | awk '{print $3}')" \
  --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  --arg profile "$PROFILE" --arg name "$NAME" \
  --argjson duration "$DURATION" --argjson concurrency "$CONCURRENCY" \
  --argjson n "$N" --argjson seeds "$SEEDS" \
  --argjson requests "$REQUESTS" --argjson rps "$RPS" \
  --argjson p50 "$P50" --argjson p99 "$P99" \
  --argjson submissions "$SUBMITS" --argjson hits "$HITS" --argjson rate "$HIT_RATE" \
  '{date: $date, go: $go, commit: $commit,
    load: {profile: $profile, duration_s: $duration, concurrency: $concurrency, n: $n, seed_pool: $seeds},
    benchmarks: [{
      name: ($name + "/c=" + ($concurrency | tostring) + "/n=" + ($n | tostring)),
      requests: $requests, "requests/s": $rps,
      "p50-ms": $p50, "p99-ms": $p99,
      submissions: $submissions, "cache-hits": $hits, "cache-hit-rate": $rate
    }]}' >"$OUT"

echo "load: $REQUESTS requests, $RPS req/s, p50 ${P50}ms, p99 ${P99}ms, cache hit rate $HIT_RATE ($HITS/$SUBMITS)" >&2
echo "wrote $OUT" >&2
