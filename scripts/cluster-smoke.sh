#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end smoke test of popprotod's distributed
# ensembles, as run by CI: run a 200-replicate PLL experiment on a plain
# single-node server, then run the identical spec on a coordinator with
# two worker processes attached, and assert (a) the distributed run
# reports cluster execution, (b) its aggregates are byte-identical to
# the single-node run's under the same run id, (c) resubmitting the spec
# to the coordinator is a cache hit — the canonical-key dedup holds
# cluster-wide — and (d) after killing and restarting the coordinator on
# the same store the result is still served without re-simulation.
#
# Usage: scripts/cluster-smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-8299}
BASE="http://127.0.0.1:${PORT}"
EXP_SPEC='{"protocol": "pll", "n": 20000, "engine": "count", "seed": 42, "replicates": 200}'

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/popprotod"
go build -o "$BIN" ./cmd/popprotod

SERVER_PID=
WORKER_PIDS=()
start_server() { # store-file
  "$BIN" -addr "127.0.0.1:${PORT}" -store "$1" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    curl -fs "$BASE/v1/health" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "server never came up" >&2
  exit 1
}
stop_server() {
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
}
stop_workers() {
  for pid in "${WORKER_PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${WORKER_PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  WORKER_PIDS=()
}
trap 'stop_workers; stop_server' EXIT

wait_state() { # url
  local state=
  for _ in $(seq 1 300); do
    state=$(curl -fs "$1" | jq -r '.state')
    [ "$state" = done ] || [ "$state" = failed ] && break
    sleep 0.2
  done
  echo "$state"
}

# --- baseline: the same ensemble on a plain single-node server ---
start_server "$WORKDIR/single.jsonl"
SID=$(curl -fs -X POST -d "$EXP_SPEC" "$BASE/v1/experiments" | jq -r '.experiment.id')
echo "single-node experiment $SID submitted" >&2
STATE=$(wait_state "$BASE/v1/experiments/$SID")
[ "$STATE" = done ] || { echo "single-node experiment ended in state $STATE" >&2; exit 1; }
SINGLE=$(curl -fs "$BASE/v1/experiments/$SID")
SINGLE_AGG=$(echo "$SINGLE" | jq -S '.aggregates')
SINGLE_MODE=$(echo "$SINGLE" | jq -r '.distribution.mode')
[ "$SINGLE_MODE" = local ] || { echo "single-node run reports mode $SINGLE_MODE" >&2; exit 1; }
echo "single-node run done (mode $SINGLE_MODE)" >&2
stop_server

# --- distributed: coordinator + 2 pull-based workers ---
start_server "$WORKDIR/cluster.jsonl"
"$BIN" -worker -coordinator "$BASE" -worker-id smoke-w1 &
WORKER_PIDS+=($!)
"$BIN" -worker -coordinator "$BASE" -worker-id smoke-w2 &
WORKER_PIDS+=($!)
for _ in $(seq 1 50); do
  WORKERS=$(curl -fs "$BASE/v1/cluster" | jq -r '.workers')
  [ "$WORKERS" -ge 2 ] 2>/dev/null && break
  sleep 0.2
done
[ "$WORKERS" -ge 2 ] || { echo "workers never registered (saw $WORKERS)" >&2; exit 1; }
echo "$WORKERS workers registered with the coordinator" >&2

DID=$(curl -fs -X POST -d "$EXP_SPEC" "$BASE/v1/experiments" | jq -r '.experiment.id')
[ "$DID" = "$SID" ] || { echo "distributed run id $DID != single-node $SID — canonical key broken" >&2; exit 1; }
STATE=$(wait_state "$BASE/v1/experiments/$DID")
[ "$STATE" = done ] || { echo "distributed experiment ended in state $STATE" >&2; exit 1; }

DIST=$(curl -fs "$BASE/v1/experiments/$DID")
MODE=$(echo "$DIST" | jq -r '.distribution.mode')
REMOTE=$(echo "$DIST" | jq -r '.distribution.remoteRanges')
RANGES=$(echo "$DIST" | jq -r '.distribution.ranges')
DWORKERS=$(echo "$DIST" | jq -r '.distribution.workers')
[ "$MODE" = cluster ] || { echo "distributed run reports mode $MODE, want cluster" >&2; exit 1; }
[ "$REMOTE" -ge 1 ] || { echo "distributed run completed $REMOTE remote ranges" >&2; exit 1; }
echo "distributed run done: $REMOTE/$RANGES ranges on $DWORKERS workers" >&2

DIST_AGG=$(echo "$DIST" | jq -S '.aggregates')
[ "$DIST_AGG" = "$SINGLE_AGG" ] || {
  echo "distributed aggregates diverge from single-node run:" >&2
  diff <(echo "$SINGLE_AGG") <(echo "$DIST_AGG") >&2 || true
  exit 1
}
echo "distributed aggregates byte-identical to the single-node run" >&2

CACHED=$(curl -fs -X POST -d "$EXP_SPEC" "$BASE/v1/experiments" | jq -r '.cached')
[ "$CACHED" = true ] || { echo "resubmission after distributed run not served from cache" >&2; exit 1; }
echo "identical resubmission served from cache (cluster-wide dedup)" >&2

# The coordinator's exposition reflects the lease traffic: every range
# completed through a remote lease, and the worker gauge is live.
METRICS=$(curl -fs "$BASE/metrics")
COMPLETED=$(echo "$METRICS" | awk '/^popprotod_cluster_leases_total\{state="completed"\}/ { print $2 }')
[ "${COMPLETED:-0}" -ge "$REMOTE" ] ||
  { echo "/metrics: cluster leases completed $COMPLETED, want >= $REMOTE" >&2; exit 1; }
GAUGE=$(echo "$METRICS" | awk '/^popprotod_cluster_workers/ { print $2 }')
[ "${GAUGE:-0}" -ge 2 ] || { echo "/metrics: cluster workers gauge $GAUGE, want >= 2" >&2; exit 1; }
echo "/metrics: $COMPLETED leases completed, $GAUGE workers live" >&2

# --- durability: kill the coordinator mid-flight workers, restart on the
# same store; the distributed result must be served without re-running ---
stop_server
echo "coordinator stopped; restarting on the same store..." >&2
start_server "$WORKDIR/cluster.jsonl"

RESTORED=$(curl -fs "$BASE/v1/experiments/$DID")
[ "$(echo "$RESTORED" | jq -r '.state')" = done ] ||
  { echo "restored experiment not done after coordinator restart" >&2; exit 1; }
RESTORED_AGG=$(echo "$RESTORED" | jq -S '.aggregates')
[ "$RESTORED_AGG" = "$SINGLE_AGG" ] ||
  { echo "restored aggregates diverge from the original run" >&2; exit 1; }
CACHED=$(curl -fs -X POST -d "$EXP_SPEC" "$BASE/v1/experiments" | jq -r '.cached')
[ "$CACHED" = true ] || { echo "resubmission not served from store after restart" >&2; exit 1; }
echo "distributed result survived the coordinator restart" >&2

echo "cluster smoke test passed" >&2
