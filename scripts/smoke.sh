#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the popprotod HTTP service, as run
# by CI: start the server with a durable result store, submit a PLL
# election at n=10^5 on the census engine, assert exactly one leader and
# a cache hit on the identical resubmission, repeat on the phase-adaptive
# hybrid engine asserting the resolved engine lands in the job record,
# run a replicated experiment
# through /v1/experiments, run a scaling sweep (PLL × n∈{1e3,1e4,1e5},
# engine auto) through /v1/sweeps and assert a fitted log-slope comes
# back, then kill the server, restart it on the same store, and assert
# the job, the experiment, the sweep and its per-cell results are still
# served, and scrape /metrics asserting the run and cache series moved.
#
# Then the store-v2-specific legs: query the durable corpus through
# GET /v1/results (filters, scaling fit, and the results CLI); kill the
# server with SIGKILL in the middle of a write burst and assert every
# record the store had acknowledged (made visible in /v1/results — the
# store indexes a record only after its group commit is durable) is
# still served after restart; and boot a server on a v1 JSONL store
# file, asserting it is migrated to the segmented layout in place.
#
# Usage: scripts/smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-8099}
BASE="http://127.0.0.1:${PORT}"
SPEC='{"protocol": "pll", "n": 100000, "engine": "count", "seed": 42}'
EXP_SPEC='{"protocol": "pll", "n": 100000, "engine": "count", "seed": 42, "replicates": 8}'
SWEEP_SPEC='{"protocols": ["pll"], "ns": [1000, 10000, 100000], "replicates": 4}'

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/popprotod"
RESULTS_BIN="$WORKDIR/results"
STORE="$WORKDIR/results.store"
go build -o "$BIN" ./cmd/popprotod
go build -o "$RESULTS_BIN" ./cmd/results

SERVER_PID=
start_server() {
  "$BIN" -addr "127.0.0.1:${PORT}" -store "$STORE" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    curl -fs "$BASE/v1/health" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "server never came up" >&2
  exit 1
}
stop_server() {
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
}
trap 'stop_server' EXIT

wait_state() { # url
  local state=
  for _ in $(seq 1 300); do
    state=$(curl -fs "$1" | jq -r '.state')
    [ "$state" = done ] || [ "$state" = failed ] && break
    sleep 0.2
  done
  echo "$state"
}

start_server

echo "catalog:" >&2
curl -fs "$BASE/v1/protocols" | jq -r '.protocols[].key' >&2

ID=$(curl -fs -X POST -d "$SPEC" "$BASE/v1/jobs" | jq -r '.job.id')
echo "submitted job $ID" >&2

STATE=$(wait_state "$BASE/v1/jobs/$ID")
[ "$STATE" = done ] || { echo "job ended in state $STATE" >&2; exit 1; }

LEADERS=$(curl -fs "$BASE/v1/jobs/$ID" | jq -r '.result.leaders')
[ "$LEADERS" = 1 ] || { echo "expected 1 leader, got $LEADERS" >&2; exit 1; }
echo "election stabilized with exactly one leader" >&2

CACHED=$(curl -fs -X POST -d "$SPEC" "$BASE/v1/jobs" | jq -r '.cached')
[ "$CACHED" = true ] || { echo "identical resubmission not served from cache" >&2; exit 1; }
echo "identical resubmission served from cache" >&2

# The SSE trace must replay at least two census snapshots.
SNAPSHOTS=$(curl -fs -N --max-time 10 "$BASE/v1/jobs/$ID/trace" | grep -c '^event: census' || true)
[ "$SNAPSHOTS" -ge 2 ] || { echo "trace replayed $SNAPSHOTS snapshots, want >= 2" >&2; exit 1; }
echo "trace replayed $SNAPSHOTS census snapshots" >&2

# --- hybrid engine: the phase-adaptive engine elects through the service ---
HYBRID_SPEC='{"protocol": "pll", "n": 100000, "engine": "hybrid", "seed": 42}'
HID=$(curl -fs -X POST -d "$HYBRID_SPEC" "$BASE/v1/jobs" | jq -r '.job.id')
echo "submitted hybrid job $HID" >&2

HSTATE=$(wait_state "$BASE/v1/jobs/$HID")
[ "$HSTATE" = done ] || { echo "hybrid job ended in state $HSTATE" >&2; exit 1; }

HJOB=$(curl -fs "$BASE/v1/jobs/$HID")
HLEADERS=$(echo "$HJOB" | jq -r '.result.leaders')
HENGINE=$(echo "$HJOB" | jq -r '.spec.engine')
[ "$HLEADERS" = 1 ] || { echo "hybrid job expected 1 leader, got $HLEADERS" >&2; exit 1; }
[ "$HENGINE" = hybrid ] || { echo "hybrid job record names engine $HENGINE" >&2; exit 1; }
HPART=$(echo "$HJOB" | jq -r '.result | (.hybrid.roundSteps + .hybrid.interactSteps + .hybrid.skipSteps) == .steps')
[ "$HPART" = true ] || { echo "hybrid mode telemetry does not partition the run's steps" >&2; exit 1; }
echo "hybrid engine elected exactly one leader (engine recorded: $HENGINE)" >&2

# --- payoff-driven skip: a no-op-dominated endgame must report skip-mode
# interactions through the service. PLL stays reaction-dense to the end
# (its countdown timers tick on every interaction), so the duel protocol —
# whose two surviving leaders meet once every ~n²/2 interactions — is the
# workload that exercises geometric skipping end to end.
SKIP_SPEC='{"protocol": "angluin", "n": 20000, "engine": "hybrid", "seed": 42, "maxParallelTime": 100000}'
KID=$(curl -fs -X POST -d "$SKIP_SPEC" "$BASE/v1/jobs" | jq -r '.job.id')
echo "submitted skip-endgame job $KID" >&2

KSTATE=$(wait_state "$BASE/v1/jobs/$KID")
[ "$KSTATE" = done ] || { echo "skip-endgame job ended in state $KSTATE" >&2; exit 1; }

KJOB=$(curl -fs "$BASE/v1/jobs/$KID")
KSKIP=$(echo "$KJOB" | jq -r '.result.hybrid.skipSteps')
KENTRIES=$(echo "$KJOB" | jq -r '.result.hybrid.skipEntries')
[ "$KSKIP" -gt 0 ] 2>/dev/null || { echo "skip-endgame job reports skipSteps=$KSKIP, want > 0" >&2; exit 1; }
[ "$KENTRIES" -gt 0 ] 2>/dev/null || { echo "skip-endgame job reports skipEntries=$KENTRIES, want > 0" >&2; exit 1; }
echo "payoff controller skipped $KSKIP interactions across $KENTRIES skip phases" >&2

# --- experiments: replicated Monte-Carlo ensemble with aggregates ---
EID=$(curl -fs -X POST -d "$EXP_SPEC" "$BASE/v1/experiments" | jq -r '.experiment.id')
echo "submitted experiment $EID" >&2

ESTATE=$(wait_state "$BASE/v1/experiments/$EID")
[ "$ESTATE" = done ] || { echo "experiment ended in state $ESTATE" >&2; exit 1; }

AGG=$(curl -fs "$BASE/v1/experiments/$EID")
REPLICATES=$(echo "$AGG" | jq -r '.aggregates.replicates')
STABILIZED=$(echo "$AGG" | jq -r '.aggregates.stabilized')
MEAN=$(echo "$AGG" | jq -r '.aggregates.meanParallelTime')
[ "$REPLICATES" = 8 ] && [ "$STABILIZED" = 8 ] ||
  { echo "experiment aggregates $STABILIZED/$REPLICATES, want 8/8" >&2; exit 1; }
echo "experiment: 8/8 replicates elected, mean parallel time $MEAN" >&2

# The SSE stream of the finished experiment replays aggregates + done.
EVENTS=$(curl -fs -N --max-time 10 "$BASE/v1/experiments/$EID/stream" | grep -c '^event: ' || true)
[ "$EVENTS" -ge 2 ] || { echo "experiment stream emitted $EVENTS events, want >= 2" >&2; exit 1; }
echo "experiment stream replayed $EVENTS events" >&2

# --- sweeps: a scaling grid with a fitted a·lg n + b curve ---
SID=$(curl -fs -X POST -d "$SWEEP_SPEC" "$BASE/v1/sweeps" | jq -r '.sweep.id')
echo "submitted sweep $SID" >&2

SSTATE=$(wait_state "$BASE/v1/sweeps/$SID")
[ "$SSTATE" = done ] || { echo "sweep ended in state $SSTATE" >&2; exit 1; }

SWEEP=$(curl -fs "$BASE/v1/sweeps/$SID")
CELLS_DONE=$(echo "$SWEEP" | jq '[.cells[] | select(.state == "done")] | length')
[ "$CELLS_DONE" = 3 ] || { echo "sweep finished $CELLS_DONE/3 cells" >&2; exit 1; }
SLOPE=$(echo "$SWEEP" | jq -r '.summary.fits[0].a')
R2=$(echo "$SWEEP" | jq -r '.summary.fits[0].r2')
EXPONENT=$(echo "$SWEEP" | jq -r '.summary.fits[0].logLogExponent')
case "$SLOPE" in ""|null) echo "sweep returned no fitted log-slope" >&2; exit 1;; esac
echo "sweep: 3/3 cells done, fitted time = ${SLOPE}·lg n (R² $R2, log-log exponent $EXPONENT)" >&2

# engine=auto resolved per cell: agent at n=1e3, hybrid at n=1e5.
ENGINES=$(echo "$SWEEP" | jq -r '[.cells[].engine] | join(",")')
[ "$ENGINES" = "agent,agent,hybrid" ] ||
  { echo "auto resolution picked engines $ENGINES, want agent,agent,hybrid" >&2; exit 1; }
echo "engine auto resolved per cell: $ENGINES" >&2

# The sweep's SSE stream replays one cell event per cell plus done.
SWEEP_EVENTS=$(curl -fs -N --max-time 10 "$BASE/v1/sweeps/$SID/stream" | grep -c '^event: ' || true)
[ "$SWEEP_EVENTS" -ge 4 ] || { echo "sweep stream emitted $SWEEP_EVENTS events, want >= 4" >&2; exit 1; }
echo "sweep stream replayed $SWEEP_EVENTS events" >&2

# --- observability: the Prometheus exposition reflects the work above ---
METRICS=$(curl -fs "$BASE/metrics")
RUNS_DONE=$(echo "$METRICS" | awk '/^popprotod_runs_total\{/ && /state="done"/ { sum += $2 } END { print sum + 0 }')
[ "$RUNS_DONE" -ge 1 ] || { echo "/metrics: popprotod_runs_total done series is zero" >&2; exit 1; }
CACHE_SERVED=$(echo "$METRICS" | awk '/^popprotod_runcore_submissions_total\{/ && (/outcome="hit"/ || /outcome="restored"/) { sum += $2 } END { print sum + 0 }')
[ "$CACHE_SERVED" -ge 1 ] || { echo "/metrics: no cache hit/restored submissions recorded" >&2; exit 1; }
echo "$METRICS" | grep -q '^popprotod_store_fsync_seconds_count' ||
  { echo "/metrics: store fsync series missing" >&2; exit 1; }
echo "/metrics: $RUNS_DONE completed runs, $CACHE_SERVED cache-served submissions" >&2

# --- durability: kill the server, restart on the same store ---
stop_server
echo "server stopped; restarting on the same store..." >&2
start_server

RESTORED=$(curl -fs "$BASE/v1/experiments/$EID")
RESTORED_STATE=$(echo "$RESTORED" | jq -r '.state')
RESTORED_MEAN=$(echo "$RESTORED" | jq -r '.aggregates.meanParallelTime')
[ "$RESTORED_STATE" = done ] || { echo "restored experiment state $RESTORED_STATE" >&2; exit 1; }
[ "$RESTORED_MEAN" = "$MEAN" ] ||
  { echo "restored mean $RESTORED_MEAN != original $MEAN" >&2; exit 1; }
echo "experiment aggregates served after restart (mean $RESTORED_MEAN)" >&2

JOB_CACHED=$(curl -fs -X POST -d "$SPEC" "$BASE/v1/jobs" | jq -r '.cached')
JOB_RESTORED=$(curl -fs "$BASE/v1/jobs/$ID" | jq -r '.restored')
[ "$JOB_CACHED" = true ] || { echo "job resubmission not served from store after restart" >&2; exit 1; }
[ "$JOB_RESTORED" = true ] || { echo "restored job not marked restored" >&2; exit 1; }
echo "job result served from the durable store after restart" >&2

# The sweep — and its per-cell results — survive the restart too.
RESTORED_SWEEP=$(curl -fs "$BASE/v1/sweeps/$SID")
RESTORED_SLOPE=$(echo "$RESTORED_SWEEP" | jq -r '.summary.fits[0].a')
[ "$(echo "$RESTORED_SWEEP" | jq -r '.state')" = done ] ||
  { echo "restored sweep not done" >&2; exit 1; }
[ "$RESTORED_SLOPE" = "$SLOPE" ] ||
  { echo "restored log-slope $RESTORED_SLOPE != original $SLOPE" >&2; exit 1; }
CELL_EID=$(echo "$RESTORED_SWEEP" | jq -r '.cells[0].experimentId')
CELL_STATE=$(curl -fs "$BASE/v1/experiments/$CELL_EID" | jq -r '.state')
[ "$CELL_STATE" = done ] || { echo "restored sweep cell experiment state $CELL_STATE" >&2; exit 1; }
echo "sweep summary and per-cell results served after restart (slope $RESTORED_SLOPE)" >&2

# The restarted process's exposition shows the store-restored submissions.
RESTORED_SUBS=$(curl -fs "$BASE/metrics" | awk '/^popprotod_runcore_submissions_total\{/ && /outcome="restored"/ { sum += $2 } END { print sum + 0 }')
[ "$RESTORED_SUBS" -ge 1 ] || { echo "/metrics: no restored submissions after restart" >&2; exit 1; }
echo "/metrics: $RESTORED_SUBS store-restored submissions after restart" >&2

# --- the corpus query layer: GET /v1/results and the results CLI ---
EXP_RECORDS=$(curl -fs "$BASE/v1/results?kind=experiment&limit=500" | jq '.results | length')
[ "$EXP_RECORDS" -ge 4 ] ||
  { echo "/v1/results: $EXP_RECORDS experiment records, want >= 4 (standalone + 3 sweep cells)" >&2; exit 1; }
SCALING=$(curl -fs "$BASE/v1/results?aggregate=scaling")
FIT_PROTO=$(echo "$SCALING" | jq -r '.fits[0].protocol')
FIT_EXPS=$(echo "$SCALING" | jq -r '.experiments')
[ "$FIT_PROTO" = pll ] || { echo "/v1/results scaling fit protocol $FIT_PROTO, want pll" >&2; exit 1; }
[ "$FIT_EXPS" -ge 4 ] || { echo "/v1/results scaling covered $FIT_EXPS experiments, want >= 4" >&2; exit 1; }
echo "/v1/results: $EXP_RECORDS experiment records, scaling fit over $FIT_EXPS (protocol $FIT_PROTO)" >&2

"$RESULTS_BIN" -addr "$BASE" -kind experiment | grep -q "$EID" ||
  { echo "results CLI did not list experiment $EID" >&2; exit 1; }
"$RESULTS_BIN" -addr "$BASE" -scaling | grep -q '^pll' ||
  { echo "results CLI -scaling did not print the pll fit" >&2; exit 1; }
echo "results CLI lists the corpus and renders the scaling fit" >&2

# --- crash safety: SIGKILL mid-write-burst; every acknowledged record
# survives. Burst jobs run at n=2022 so an n-range filter isolates them.
# A record showing up in /v1/results is the durability acknowledgment:
# the store indexes a record only after the fdatasync covering it
# returns, so everything visible here must be served after the crash.
BURST=24
for i in $(seq 1 "$BURST"); do
  curl -fs -X POST -d "{\"protocol\":\"pll\",\"n\":2022,\"engine\":\"count\",\"seed\":$i}" \
    "$BASE/v1/jobs" >/dev/null
done
ACKED=""
for _ in $(seq 1 200); do
  ACKED=$(curl -fs "$BASE/v1/results?kind=job&n_min=2022&n_max=2022&limit=500" | jq -r '.results[].id')
  [ "$(echo "$ACKED" | grep -c .)" -ge $((BURST / 2)) ] && break
  sleep 0.05
done
ACKED_N=$(echo "$ACKED" | grep -c .)
[ "$ACKED_N" -ge 1 ] || { echo "no burst records became visible before the kill" >&2; exit 1; }
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
echo "SIGKILL with $ACKED_N/$BURST burst records acknowledged; restarting..." >&2
start_server
SURVIVED=$(curl -fs "$BASE/v1/results?kind=job&n_min=2022&n_max=2022&limit=500" | jq -r '.results[].id')
for BID in $ACKED; do
  echo "$SURVIVED" | grep -qx "$BID" ||
    { echo "acknowledged record $BID lost after SIGKILL" >&2; exit 1; }
  BSTATE=$(curl -fs "$BASE/v1/jobs/$BID" | jq -r '.state')
  [ "$BSTATE" = done ] || { echo "acknowledged job $BID in state $BSTATE after SIGKILL" >&2; exit 1; }
done
echo "all $ACKED_N acknowledged burst records served after SIGKILL + restart" >&2

# --- v1 migration: a JSONL store file is upgraded in place at boot ---
# Build the v1 fixture out of the live corpus: a stored record fetched
# through /v1/results is exactly a v1 JSONL line.
V1STORE="$WORKDIR/v1-results.jsonl"
curl -fs "$BASE/v1/results?kind=job&limit=500" |
  jq -c --arg id "$ID" '.results[] | select(.id == $id) | {kind,key,id,spec,data,savedAt}' > "$V1STORE"
[ -s "$V1STORE" ] || { echo "failed to build v1 JSONL fixture" >&2; exit 1; }
stop_server
STORE="$V1STORE"
start_server
[ -d "$V1STORE" ] || { echo "v1 JSONL file was not migrated to a store directory" >&2; exit 1; }
[ -f "$V1STORE.v1.bak" ] || { echo "v1 migration left no .v1.bak of the original" >&2; exit 1; }
MIGRATED_STATE=$(curl -fs "$BASE/v1/jobs/$ID" | jq -r '.state')
MIGRATED_RESTORED=$(curl -fs "$BASE/v1/jobs/$ID" | jq -r '.restored')
[ "$MIGRATED_STATE" = done ] && [ "$MIGRATED_RESTORED" = true ] ||
  { echo "migrated job $ID: state=$MIGRATED_STATE restored=$MIGRATED_RESTORED" >&2; exit 1; }
MIGRATED_CACHED=$(curl -fs -X POST -d "$SPEC" "$BASE/v1/jobs" | jq -r '.cached')
[ "$MIGRATED_CACHED" = true ] || { echo "migrated record not served on resubmission" >&2; exit 1; }
echo "v1 JSONL store migrated in place; its record served by id and by key" >&2

echo "smoke test passed" >&2
