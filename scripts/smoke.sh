#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the popprotod HTTP service, as run
# by CI: start the server, submit a PLL election at n=10^5 on the census
# engine, assert exactly one leader, and assert the identical resubmission
# is served from the result cache.
#
# Usage: scripts/smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-8099}
BASE="http://127.0.0.1:${PORT}"
SPEC='{"protocol": "pll", "n": 100000, "engine": "count", "seed": 42}'

BIN=$(mktemp -d)/popprotod
go build -o "$BIN" ./cmd/popprotod

"$BIN" -addr "127.0.0.1:${PORT}" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fs "$BASE/v1/health" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "$BASE/v1/health" >/dev/null || { echo "server never came up" >&2; exit 1; }

echo "catalog:" >&2
curl -fs "$BASE/v1/protocols" | jq -r '.protocols[].key' >&2

ID=$(curl -fs -X POST -d "$SPEC" "$BASE/v1/jobs" | jq -r '.job.id')
echo "submitted job $ID" >&2

STATE=queued
for _ in $(seq 1 300); do
  STATE=$(curl -fs "$BASE/v1/jobs/$ID" | jq -r '.state')
  [ "$STATE" = done ] || [ "$STATE" = failed ] && break
  sleep 0.2
done
[ "$STATE" = done ] || { echo "job ended in state $STATE" >&2; exit 1; }

LEADERS=$(curl -fs "$BASE/v1/jobs/$ID" | jq -r '.result.leaders')
[ "$LEADERS" = 1 ] || { echo "expected 1 leader, got $LEADERS" >&2; exit 1; }
echo "election stabilized with exactly one leader" >&2

CACHED=$(curl -fs -X POST -d "$SPEC" "$BASE/v1/jobs" | jq -r '.cached')
[ "$CACHED" = true ] || { echo "identical resubmission not served from cache" >&2; exit 1; }
echo "identical resubmission served from cache" >&2

# The SSE trace must replay at least two census snapshots.
SNAPSHOTS=$(curl -fs -N --max-time 10 "$BASE/v1/jobs/$ID/trace" | grep -c '^event: census' || true)
[ "$SNAPSHOTS" -ge 2 ] || { echo "trace replayed $SNAPSHOTS snapshots, want >= 2" >&2; exit 1; }
echo "trace replayed $SNAPSHOTS census snapshots" >&2

echo "smoke test passed" >&2
